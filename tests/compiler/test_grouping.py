"""Tests for Algorithm 1 (grouping) and plan assembly."""

import pytest

from repro.apps import harris as harris_app
from repro.compiler.grouping import group_pipeline
from repro.compiler.options import CompileOptions
from repro.compiler.plan import compile_plan
from repro.compiler.storage import SCRATCH, classify_storage
from repro.lang import (
    Accumulate, Accumulator, Case, Cast, Float, Function, Image, Int,
    Interval, Parameter, Sum, UChar, Variable,
)
from repro.pipeline.graph import PipelineGraph
from repro.pipeline.inline import inline_pipeline
from repro.pipeline.ir import PipelineIR


def _inlined_harris_ir():
    app = harris_app.build_pipeline()
    est = {app.params["R"]: 256, app.params["C"]: 256}
    result = inline_pipeline(app.outputs, est)
    graph = PipelineGraph(result.outputs)
    return app, est, PipelineIR(graph)


def test_harris_groups_into_one():
    app, est, ir = _inlined_harris_ir()
    grouping = group_pipeline(ir, est, (32, 256), 0.4)
    assert len(grouping.groups) == 1
    group = grouping.groups[0]
    assert {s.name for s in group.stages} == {
        "Ix", "Iy", "Sxx", "Sxy", "Syy", "harris"}
    assert group.root.name == "harris"
    assert group.is_tiled


def test_tiny_threshold_prevents_overlapping_merges():
    """With a near-zero threshold only zero-overlap (point-wise) merges
    survive: the S-stages fuse with harris, but the stencil stages Ix/Iy
    stay separate because fusing them would introduce overlap."""
    app, est, ir = _inlined_harris_ir()
    grouping = group_pipeline(ir, est, (8, 8), 0.01)
    assert len(grouping.groups) == 3
    singleton_names = sorted(g.stages[0].name for g in grouping.groups
                             if len(g.stages) == 1)
    assert singleton_names == ["Ix", "Iy"]


def test_groups_partition_stages():
    app, est, ir = _inlined_harris_ir()
    grouping = group_pipeline(ir, est, (32, 256), 0.4)
    seen = []
    for group in grouping.groups:
        seen.extend(group.stages)
    assert len(seen) == len(set(map(id, seen))) == len(ir.stages)


def test_group_execution_order_valid():
    app, est, ir = _inlined_harris_ir()
    grouping = group_pipeline(ir, est, (8, 8), 0.01)
    pos = {id(g): i for i, g in enumerate(grouping.groups)}
    for producer, consumer in ir.graph.edges():
        gp = grouping.group_of(producer)
        gc = grouping.group_of(consumer)
        if gp is not gc:
            assert pos[id(gp)] < pos[id(gc)]


def test_accumulator_never_merged():
    R = Parameter(Int, "R")
    I = Image(UChar, [R, R], name="I")
    x, y, b = Variable("x"), Variable("y"), Variable("b")
    ivl = Interval(0, R - 1, 1)
    hist = Accumulator(redDom=([x, y], [ivl, ivl]),
                       varDom=([b], [Interval(0, 255, 1)]),
                       typ=Int, name="hist")
    hist.defn = Accumulate(hist(Cast(Int, I(x, y))), 1, Sum)
    scaled = Function(varDom=([b], [Interval(0, 255, 1)]), typ=Float,
                      name="scaled")
    scaled.defn = hist(b) / (R * 1.0)
    ir = PipelineIR(PipelineGraph([scaled]))
    grouping = group_pipeline(ir, {R: 64}, (32,), 0.5)
    assert len(grouping.groups) == 2


def test_infeasible_scaling_blocks_merge():
    R = Parameter(Int, "R")
    x = Variable("x")
    g = Function(varDom=([x], [Interval(0, 8 * R, 1)]), typ=Float, name="g")
    g.defn = x * 1.0
    f = Function(varDom=([x], [Interval(0, R, 1)]), typ=Float, name="f")
    f.defn = g(x // 2) + g(x // 4)
    ir = PipelineIR(PipelineGraph([f]))
    grouping = group_pipeline(ir, {R: 256}, (32,), 0.5)
    assert len(grouping.groups) == 2


def test_min_size_skips_small_groups():
    R = Parameter(Int, "R")
    x = Variable("x")
    small = Function(varDom=([x], [Interval(0, 15, 1)]), typ=Float,
                     name="small")
    small.defn = x * 2.0
    big = Function(varDom=([x], [Interval(0, R, 1)]), typ=Float, name="big")
    big.defn = small(x // 64)
    ir = PipelineIR(PipelineGraph([big]))
    merged = group_pipeline(ir, {R: 1023}, (256,), 0.5, min_size=0)
    blocked = group_pipeline(ir, {R: 1023}, (256,), 0.5, min_size=64)
    assert len(merged.groups) == 1
    assert len(blocked.groups) == 2


def test_summary_lists_groups():
    app, est, ir = _inlined_harris_ir()
    grouping = group_pipeline(ir, est, (32, 256), 0.4)
    text = grouping.summary()
    assert "harris" in text and "group 0" in text


# -- compile_plan end-to-end ---------------------------------------------------

def test_compile_plan_harris_matches_figure7_storage():
    """The optimized plan gives scratchpads to exactly the stages the
    paper's generated code (Figure 7) allocates as scratchpads."""
    app = harris_app.build_pipeline()
    est = {app.params["R"]: 256, app.params["C"]: 256}
    plan = compile_plan(app.outputs, est, CompileOptions.optimized())
    scratch = {s.name for s, d in plan.storage.items() if d.kind == SCRATCH}
    assert scratch == {"Ix", "Iy", "Sxx", "Syy", "Sxy"}
    assert len(plan.group_plans) == 1
    assert sorted(plan.inlined_names) == [
        "Ixx", "Ixy", "Iyy", "det", "trace"]


def test_compile_plan_base_variant():
    app = harris_app.build_pipeline()
    est = {app.params["R"]: 256, app.params["C"]: 256}
    plan = compile_plan(app.outputs, est, CompileOptions.base())
    # inlining still happens, but no grouping/tiling
    assert len(plan.group_plans) == 6
    assert all(not gp.is_tiled for gp in plan.group_plans)
    assert all(d.kind == "full" for d in plan.storage.values())


def test_compile_plan_no_inline():
    app = harris_app.build_pipeline()
    est = {app.params["R"]: 256, app.params["C"]: 256}
    from dataclasses import replace
    plan = compile_plan(app.outputs, est,
                        replace(CompileOptions.optimized(), inline=False))
    assert len(plan.ir.stages) == 11
    assert plan.inlined_names == ()


def test_compile_plan_output_map_preserves_identity():
    app = harris_app.build_pipeline()
    est = {app.params["R"]: 256, app.params["C"]: 256}
    plan = compile_plan(app.outputs, est)
    assert set(plan.output_map) == set(app.outputs)
    assert plan.output_map[app.outputs[0]].name == "harris"


def test_tile_space_and_tiles_cover_domain():
    app = harris_app.build_pipeline()
    est = {app.params["R"]: 100, app.params["C"]: 70}
    plan = compile_plan(app.outputs, est, CompileOptions.optimized((32, 32)))
    gp = plan.group_plans[0]
    space = gp.tile_space(plan.ir, est)
    assert space[0].lo == 0 and space[0].hi == 101
    tiles = list(gp.tiles(plan.ir, est))
    # tiles partition group coordinates: count and coverage
    assert len(tiles) == 4 * 3  # ceil(102/32) x ceil(72/32)
    covered_lo = min(t[0].lo for t in tiles)
    covered_hi = max(t[0].hi for t in tiles)
    assert covered_lo <= 0 and covered_hi >= 101


def test_plan_summary_mentions_scratch():
    app = harris_app.build_pipeline()
    est = {app.params["R"]: 256, app.params["C"]: 256}
    plan = compile_plan(app.outputs, est)
    text = plan.summary()
    assert "scratch" in text and "group 0" in text


def test_grouping_dot_clusters():
    """Figure 8 rendering: one dashed cluster per group."""
    app = harris_app.build_pipeline()
    est = {app.params["R"]: 256, app.params["C"]: 256}
    plan = compile_plan(app.outputs, est, CompileOptions.optimized())
    dot = plan.grouping.dot()
    assert dot.count("subgraph cluster_") == len(plan.group_plans)
    assert "style=dashed" in dot
    assert '"Ix" -> "Sxx"' in dot  # post-inlining edge
