"""Fusion across colour-channel reductions (constant-index dependences).

Stages like ``gray = 0.3*s(0,x,y) + 0.6*s(1,x,y) + 0.1*s(2,x,y)`` read a
producer at *constant* channel indices; because the channel extent is a
compile-time constant the dependence is bounded and the group remains
tilable — the pattern behind the interpolate/local-laplacian fusions.
"""

import numpy as np
import pytest

from repro import CompileOptions, compile_pipeline
from repro.codegen.build import build_native, compiler_available
from repro.lang import (
    Float, Function, Image, Int, Interval, Parameter, Variable,
)

RNG = np.random.default_rng(5)


@pytest.fixture(scope="module")
def channel_pipeline():
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    I = Image(Float, [3, R, C], name="Irgb")
    c, x, y = Variable("c"), Variable("x"), Variable("y")
    chan = Interval(0, 2, 1)
    row, col = Interval(0, R - 1, 1), Interval(0, C - 1, 1)

    s = Function(varDom=([c, x, y], [chan, row, col]), typ=Float, name="s")
    s.defn = I(c, x, y) * 2.0

    luma = Function(varDom=([x, y], [row, col]), typ=Float, name="luma")
    luma.defn = (0.299 * s(0, x, y) + 0.587 * s(1, x, y)
                 + 0.114 * s(2, x, y))

    out = Function(varDom=([c, x, y], [chan, row, col]), typ=Float,
                   name="out")
    out.defn = s(c, x, y) * luma(x, y)
    return (R, C), I, (s, luma, out)


def test_channel_reduction_groups(channel_pipeline):
    (R, C), I, (s, luma, out) = channel_pipeline
    values = {R: 128, C: 128}
    compiled = compile_pipeline([out], values,
                                CompileOptions.optimized((4, 32, 32)))
    # one fused group despite the 3D->2D->3D shape changes; `s` is
    # point-wise so it may be inlined instead — either way no extra group
    assert len(compiled.plan.group_plans) == 1


def test_channel_reduction_executes(channel_pipeline):
    (R, C), I, (s, luma, out) = channel_pipeline
    values = {R: 64, C: 48}
    data = RNG.random((3, 64, 48), dtype=np.float32)
    compiled = compile_pipeline([out], values,
                                CompileOptions.optimized((4, 16, 16)))
    got = compiled(values, {I: data})["out"]
    sref = data * 2.0
    luma_ref = 0.299 * sref[0] + 0.587 * sref[1] + 0.114 * sref[2]
    np.testing.assert_allclose(got, sref * luma_ref[None], rtol=1e-5)


@pytest.mark.skipif(not compiler_available(), reason="no C compiler")
def test_channel_reduction_native(channel_pipeline):
    (R, C), I, (s, luma, out) = channel_pipeline
    values = {R: 64, C: 48}
    data = RNG.random((3, 64, 48), dtype=np.float32)
    compiled = compile_pipeline([out], values,
                                CompileOptions.optimized((4, 16, 16)),
                                name="chanfuse")
    interp = compiled(values, {I: data})["out"]
    native = build_native(compiled.plan, "chanfuse")
    nat = native(values, {I: data}, n_threads=2)["out"]
    np.testing.assert_allclose(nat, interp, rtol=1e-5, atol=1e-6)


def test_parametric_extent_constant_index_not_grouped():
    """A constant index over a *parametric* dimension has an unbounded
    dependence: the stages must stay in separate groups (and still run
    correctly)."""
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="Ipx")
    x = Variable("x")
    dom = Interval(0, R - 1, 1)
    a = Function(varDom=([x], [dom]), typ=Float, name="a")
    a.defn = I(x) + 1.0
    b = Function(varDom=([x], [dom]), typ=Float, name="b")
    b.defn = a(x) - a(0)  # reads a fixed point of a parametric dim
    values = {R: 64}
    from dataclasses import replace
    options = replace(CompileOptions.optimized((16,)), inline=False)
    compiled = compile_pipeline([b], values, options)
    assert len(compiled.plan.group_plans) == 2
    data = RNG.random(64, dtype=np.float32)
    got = compiled(values, {I: data})["b"]
    ref = (data + 1.0) - (data[0] + 1.0)
    np.testing.assert_allclose(got, ref, rtol=1e-5)
