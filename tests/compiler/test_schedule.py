"""Tests for initial schedules (Section 3.1) and the schedule map type."""

from fractions import Fraction

import pytest

from repro.apps.harris import build_pipeline
from repro.compiler.schedule import initial_schedule, initial_schedules
from repro.lang.constructs import Variable
from repro.pipeline.graph import PipelineGraph
from repro.pipeline.ir import PipelineIR
from repro.poly.imap import Schedule, ScheduleDim


def test_harris_initial_schedules_match_paper():
    """The paper's Section 3.1 example: Ix -> (0, x, y), Ixx -> (1, x, y),
    Sxx -> (2, x, y)."""
    app = build_pipeline()
    ir = PipelineIR(PipelineGraph(app.outputs))
    schedules = initial_schedules(ir)
    by_name = {s.name: sched for s, sched in schedules.items()}
    assert by_name["Ix"].level == 0
    assert by_name["Ixx"].level == 1
    assert by_name["Sxx"].level == 2
    sched = by_name["Ix"]
    assert sched.relation_str("Ix") == "Ix: (x, y) -> (0, x, y)"


def test_schedule_dim_apply():
    x = Variable("x")
    dim = ScheduleDim(x, Fraction(2), Fraction(1))
    assert dim.apply(3) == 7


def test_schedule_accessors():
    x, y = Variable("x"), Variable("y")
    sched = Schedule.initial(2, [x, y])
    assert sched.ndim == 2
    assert sched.dim_for(y).variable is y
    assert sched.dim_position(y) == 1
    with pytest.raises(KeyError):
        sched.dim_for(Variable("z"))


def test_schedule_transformations():
    x = Variable("x")
    sched = Schedule.initial(0, [x])
    scaled = sched.scaled(0, Fraction(4), Fraction(0))
    assert scaled.dims[0].scale == 4
    assert scaled.with_level(3).level == 3
    assert "4*x" in scaled.relation_str("f")


def test_initial_schedule_of_single_stage():
    app = build_pipeline()
    ir = PipelineIR(PipelineGraph(app.outputs))
    harris = next(s for s in ir.stages.values() if s.name == "harris")
    sched = initial_schedule(harris)
    assert sched.level == 4
    assert sched.ndim == 2
