"""Unit tests for the alternative tiling-strategy models (Figure 5)."""

from fractions import Fraction

import pytest

from repro.bench.figure5 import figure5_chain
from repro.compiler.align_scale import compute_group_transforms
from repro.compiler.alt_tiling import (
    TilingStats, compare_strategies, overlapped_stats, parallelogram_stats,
    split_stats,
)
from repro.pipeline.graph import PipelineGraph
from repro.pipeline.ir import PipelineIR


@pytest.fixture(scope="module")
def chain():
    N, fin, stages = figure5_chain()
    ir = PipelineIR(PipelineGraph([stages[-1]]))
    transforms = compute_group_transforms(ir, stages, stages[-1])
    return N, ir, transforms, stages


def test_overlapped_redundancy_shrinks_with_tile_size(chain):
    N, ir, transforms, stages = chain
    params = {N: 4096}
    small = overlapped_stats(ir, transforms, stages, 0, 32, params)
    large = overlapped_stats(ir, transforms, stages, 0, 256, params)
    assert small.redundancy > large.redundancy > 0


def test_overlapped_never_communicates(chain):
    N, ir, transforms, stages = chain
    stats = overlapped_stats(ir, transforms, stages, 0, 64, {N: 1024})
    assert stats.cross_tile_live_values == 0
    assert stats.phases == 1
    assert stats.parallel


def test_split_two_phases_and_liveness(chain):
    N, ir, transforms, stages = chain
    stats = split_stats(ir, transforms, stages, 0, 64, {N: 1024})
    assert stats.phases == 2
    assert stats.redundancy == 0.0
    assert stats.cross_tile_live_values > 0
    assert stats.parallel


def test_parallelogram_wavefront(chain):
    N, ir, transforms, stages = chain
    stats = parallelogram_stats(ir, transforms, stages, 0, 64, {N: 1024})
    assert stats.concurrent_tiles == 1
    assert not stats.parallel
    assert stats.phases > 1


def test_compare_strategies_order(chain):
    N, ir, transforms, stages = chain
    over, split, para = compare_strategies(ir, transforms, stages, 0, 64,
                                           {N: 1024})
    assert over.strategy == "overlapped"
    assert split.strategy == "split"
    assert para.strategy == "parallelogram"


def test_more_tiles_more_split_liveness(chain):
    """Live boundary values grow with the number of tiles."""
    N, ir, transforms, stages = chain
    few = split_stats(ir, transforms, stages, 0, 256, {N: 1024})
    many = split_stats(ir, transforms, stages, 0, 32, {N: 1024})
    assert many.cross_tile_live_values > few.cross_tile_live_values
