"""Golden tests for ``CompiledPipeline.summary()`` and ``explain()``.

The summary must state each tiled group's tile sizes and halo widths;
the explain output must replay every Algorithm 1 merge decision with its
overlap cost.  Every paper application must produce a non-trivial
decision log (the acceptance property of the observability layer).
"""

import re

import pytest

from repro import CompileOptions, compile_pipeline
from repro.bench.harness import DEFAULT_TILES, SMALL_BUILDERS

ALL_APPS = sorted(SMALL_BUILDERS)


def _compile(name: str, size: int = 128):
    app = SMALL_BUILDERS[name]()
    values = {app.params["R"]: size, app.params["C"]: size}
    options = CompileOptions.optimized(DEFAULT_TILES[name])
    return compile_pipeline(app.outputs, values, options, name=name)


# -- golden: harris ----------------------------------------------------------

@pytest.fixture(scope="module")
def harris():
    return _compile("harris")


def test_harris_summary_golden(harris):
    text = harris.summary()
    # one fused group of all 6 non-inlined stages, 32x256 tiles, halo 2,2
    assert re.search(r"group 0 \[tiled 32x256, halo 2,2\]", text), text
    for stage in ("Ix", "Iy", "Sxx", "Syy", "Sxy", "harris"):
        assert stage in text
    assert "scratch:" in text


def test_harris_explain_golden(harris):
    text = harris.explain()
    assert "== grouping decisions (Algorithm 1) ==" in text
    assert "== final groups ==" in text
    assert "== storage ==" in text
    assert "options: tiles=32x256" in text
    merges = [l for l in text.splitlines() if ": merge" in l]
    assert len(merges) == 5, text  # 6 stages fuse pairwise in 5 rounds
    # every merge line carries its measured overlap cost
    for line in merges:
        assert re.search(r"overlap \d", line), line
    assert "overlap within threshold" in text


# -- golden: pyramid_blend ---------------------------------------------------

@pytest.fixture(scope="module")
def pyramid():
    return _compile("pyramid_blend", size=256)


def test_pyramid_summary_golden(pyramid):
    text = pyramid.summary()
    assert re.search(r"group \d+ \[tiled ", text), text
    # pyramid halos are fractional at coarse levels: widths render as
    # fractions or integers, never empty
    for line in text.splitlines():
        m = re.search(r"halo ([\d,/ ]+)\]", line)
        if m:
            assert m.group(1).strip(), line


def test_pyramid_explain_golden(pyramid):
    text = pyramid.explain()
    assert "== grouping decisions (Algorithm 1) ==" in text
    merges = [l for l in text.splitlines() if ": merge" in l]
    # each accepted merge reduces the group count by exactly one, so the
    # log must account for every singleton that disappeared
    n_stages = len(pyramid.plan.ir.stages)
    n_groups = len(pyramid.plan.group_plans)
    assert len(merges) == n_stages - n_groups, text
    assert len(merges) >= 3, text
    assert n_groups < n_stages


# -- every paper app produces a non-trivial decision log ---------------------

@pytest.mark.parametrize("name", ALL_APPS)
def test_explain_nontrivial_for_every_app(name):
    compiled = _compile(name, size=256)
    decisions = compiled.plan.grouping.decisions
    assert decisions, f"{name}: no merge candidates evaluated"
    text = compiled.explain()
    assert "== grouping decisions (Algorithm 1) ==" in text
    # at least one decision line with a round marker
    assert re.search(r"round \d+: (merge|keep)", text), text
    # overlap costs appear for threshold-checked candidates
    overlap_lines = [l for l in text.splitlines() if "overlap" in l]
    assert overlap_lines, text


@pytest.mark.parametrize("name", ALL_APPS)
def test_summary_reports_tiles_and_halos(name):
    compiled = _compile(name, size=256)
    text = compiled.summary()
    tiled = [gp for gp in compiled.plan.group_plans if gp.is_tiled]
    if tiled:
        assert re.search(r"\[tiled \d+(x\d+)*, halo ", text), text
