"""Semantic-preservation properties: every optimization knob must leave
pipeline outputs bit-identical (up to float association) on randomized
pipelines, including sampling chains."""

import numpy as np
import pytest
from dataclasses import replace
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CompileOptions, compile_pipeline
from repro.lang import (
    Case, Condition, Float, Function, Image, Int, Interval, Parameter,
    Stencil, Variable,
)

ops = st.lists(st.sampled_from(["stencil", "point", "down", "up"]),
               min_size=2, max_size=5)


def build_random_pipeline(op_list):
    """A 1-D chain mixing stencils, point-wise ops and 2x re-sampling.

    Tracks the current scale so domains stay consistent; starts at scale
    4 so at most two downsamples stay integral.
    """
    R = Parameter(Int, "R")
    I = Image(Float, [8 * R + 8], name="I")
    x = Variable("x")

    def dom(scale_num):
        # scale_num = current length multiplier (x8 base)
        return Interval(0, scale_num * R + 7, 1)

    scale = 8
    prev = I
    stages = []
    for i, op in enumerate(op_list):
        if op == "down" and scale >= 2:
            scale //= 2
            f = Function(varDom=([x], [dom(scale)]), typ=Float,
                         name=f"r{i}")
            # reads up to 2x+1, which must stay within the producer's
            # domain [0, 2*scale*R + 7]
            cond = (Condition(x, ">=", 1)
                    & Condition(x, "<=", scale * R + 2))
            f.defn = [Case(cond, (prev(2 * x - 1) + prev(2 * x)
                                  + prev(2 * x + 1)) / 3.0)]
        elif op == "up" and scale <= 4:
            scale *= 2
            f = Function(varDom=([x], [dom(scale)]), typ=Float,
                         name=f"r{i}")
            f.defn = prev(x // 2)
        elif op == "stencil":
            f = Function(varDom=([x], [dom(scale)]), typ=Float,
                         name=f"r{i}")
            cond = (Condition(x, ">=", 2)
                    & Condition(x, "<=", scale * R + 5))
            f.defn = [Case(cond, Stencil(prev(x), 0.2, [1, 1, 1, 1, 1]))]
        else:  # point-wise
            f = Function(varDom=([x], [dom(scale)]), typ=Float,
                         name=f"r{i}")
            f.defn = prev(x) * 1.25 + 0.5
        stages.append(f)
        prev = f
    return R, I, stages


@settings(max_examples=20, deadline=None)
@given(ops, st.integers(8, 24), st.sampled_from([8, 16, 32]))
def test_all_knobs_preserve_semantics(op_list, r_value, tile):
    R, I, stages = build_random_pipeline(op_list)
    values = {R: r_value}
    rng = np.random.default_rng(r_value)
    data = rng.random(8 * r_value + 8, dtype=np.float32)

    reference = None
    for options in [
        CompileOptions.base(),
        CompileOptions.optimized((tile,), 0.9),
        replace(CompileOptions.optimized((tile,), 0.9), inline=False),
        replace(CompileOptions.optimized((tile,), 0.9),
                tight_overlap=False),
        CompileOptions(inline=False, group=False, tile=True,
                       tile_sizes=(tile,)),
    ]:
        compiled = compile_pipeline([stages[-1]], values, options)
        out = compiled(values, {I: data})[stages[-1].name]
        if reference is None:
            reference = out
        else:
            np.testing.assert_allclose(out, reference, rtol=1e-5,
                                       atol=1e-6)


@settings(max_examples=10, deadline=None)
@given(ops, st.integers(8, 16))
def test_vectorize_flag_preserves_semantics(op_list, r_value):
    R, I, stages = build_random_pipeline(op_list)
    values = {R: r_value}
    data = np.random.default_rng(r_value).random(8 * r_value + 8,
                                                 dtype=np.float32)
    compiled = compile_pipeline([stages[-1]], values,
                                CompileOptions.optimized((16,), 0.9))
    fast = compiled(values, {I: data})[stages[-1].name]
    slow = compiled(values, {I: data},
                    vectorize=False)[stages[-1].name]
    np.testing.assert_array_equal(fast, slow)
