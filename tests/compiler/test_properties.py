"""Property-based tests on core compiler invariants (hypothesis).

Random stencil-chain pipelines and random tile configurations must
always satisfy:

* groups partition the stage set and execute in dependence order;
* the union of owned tile regions covers every live-out exactly once;
* every in-group read is inside the producer's computed region;
* scratch sizing upper-bounds the actual per-tile regions;
* executed results are invariant under tiling configuration.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CompileOptions, compile_pipeline
from repro.compiler.tiling import compute_tile_regions, stage_tile_region
from repro.lang import (
    Case, Condition, Float, Function, Image, Int, Interval, Parameter,
    Stencil, Variable,
)

sizes = st.integers(24, 80)
tile_sizes = st.sampled_from([4, 8, 16, 32])
radii = st.lists(st.integers(0, 2), min_size=2, max_size=4)
thresholds = st.sampled_from([0.2, 0.4, 0.5, 2.0])


def build_chain(radii_list):
    """A 1-D chain of box stencils with the given radii."""
    R = Parameter(Int, "R")
    I = Image(Float, [R + 8], name="I")
    x = Variable("x")
    dom = Interval(0, R + 7, 1)
    margin = 4
    prev = I
    stages = []
    for i, radius in enumerate(radii_list):
        f = Function(varDom=([x], [dom]), typ=Float, name=f"st{i}")
        cond = (Condition(x, ">=", margin)
                & Condition(x, "<=", R + 7 - margin))
        if radius == 0:
            f.defn = [Case(cond, prev(x) * 1.5)]
        else:
            weights = [1] * (2 * radius + 1)
            f.defn = [Case(cond, Stencil(prev(x), 1.0 / len(weights),
                                         weights))]
        stages.append(f)
        prev = f
    return R, I, stages


@settings(max_examples=25, deadline=None)
@given(radii, sizes, tile_sizes, thresholds)
def test_grouping_partitions_and_orders(radii_list, size, tile, threshold):
    R, I, stages = build_chain(radii_list)
    plan = compile_pipeline(
        [stages[-1]], {R: size},
        CompileOptions.optimized((tile,), threshold)).plan
    seen = []
    for gp in plan.group_plans:
        seen.extend(gp.ordered_stages)
    assert len(seen) == len(set(map(id, seen))) == len(plan.ir.stages)
    position = {id(s): i for i, s in enumerate(seen)}
    for producer, consumer in plan.ir.graph.edges():
        assert position[id(producer)] < position[id(consumer)]


@settings(max_examples=25, deadline=None)
@given(radii, sizes, tile_sizes, thresholds)
def test_owned_regions_partition_liveouts(radii_list, size, tile,
                                          threshold):
    """Each live-out point is owned by exactly one tile."""
    R, I, stages = build_chain(radii_list)
    plan = compile_pipeline(
        [stages[-1]], {R: size},
        CompileOptions.optimized((tile,), threshold)).plan
    values = {R: size}
    for gp in plan.group_plans:
        if not gp.is_tiled:
            continue
        for stage in gp.liveouts:
            domain = plan.ir[stage].domain.concretize(values)
            counts = np.zeros(domain[0].size, dtype=int)
            for tile_box in gp.tiles(plan.ir, values):
                owned = stage_tile_region(gp.transforms[stage], domain,
                                          tile_box)
                if owned is None:
                    continue
                counts[owned[0].lo - domain[0].lo:
                       owned[0].hi - domain[0].lo + 1] += 1
            assert (counts == 1).all()


@settings(max_examples=25, deadline=None)
@given(radii, sizes, tile_sizes, thresholds)
def test_tile_regions_cover_reads(radii_list, size, tile, threshold):
    """Producers' regions contain everything their consumers read."""
    R, I, stages = build_chain(radii_list)
    plan = compile_pipeline(
        [stages[-1]], {R: size},
        CompileOptions.optimized((tile,), threshold)).plan
    values = {R: size}
    for gp in plan.group_plans:
        if not gp.is_tiled or len(gp.ordered_stages) < 2:
            continue
        members = set(gp.ordered_stages)
        for tile_box in gp.tiles(plan.ir, values):
            regions = compute_tile_regions(
                plan.ir, gp.transforms, gp.ordered_stages, gp.liveouts,
                tile_box, values)
            for consumer in gp.ordered_stages:
                if consumer not in regions:
                    continue
                consumer_ir = plan.ir[consumer]
                env = dict(values)
                env.update(zip(consumer_ir.variables, regions[consumer]))
                for access in consumer_ir.accesses:
                    if access.producer not in members \
                            or access.producer not in regions:
                        continue
                    producer_box = plan.ir[access.producer] \
                        .domain.concretize(values)
                    for d, rng in enumerate(access.range_box(env)):
                        clamped = rng.intersect(producer_box[d])
                        if clamped is None:
                            continue
                        assert regions[access.producer][d].contains(clamped)


@settings(max_examples=12, deadline=None)
@given(radii, st.integers(32, 64), tile_sizes)
def test_results_invariant_under_tiling(radii_list, size, tile):
    """Output identical for base and any tiled configuration."""
    R, I, stages = build_chain(radii_list)
    values = {R: size}
    rng = np.random.default_rng(size)
    data = rng.random(size + 8, dtype=np.float32)
    base = compile_pipeline([stages[-1]], values, CompileOptions.base())
    ref = base(values, {I: data})[stages[-1].name]
    tiled = compile_pipeline([stages[-1]], values,
                             CompileOptions.optimized((tile,), 0.6))
    out = tiled(values, {I: data})[stages[-1].name]
    np.testing.assert_allclose(out, ref, rtol=1e-6, atol=1e-7)


@settings(max_examples=10, deadline=None)
@given(radii, st.integers(32, 64), tile_sizes)
def test_scratch_sizes_bound_regions(radii_list, size, tile):
    """Static scratch sizing covers every actual per-tile region."""
    from repro.codegen.cgen import CGenerator
    R, I, stages = build_chain(radii_list)
    values = {R: size}
    plan = compile_pipeline([stages[-1]], values,
                            CompileOptions.optimized((tile,), 0.6)).plan
    gen = CGenerator(plan)
    for gp in plan.group_plans:
        if not gp.is_tiled:
            continue
        scratch = [s for s in gp.ordered_stages
                   if plan.storage[s].kind == "scratch"]
        for tile_box in gp.tiles(plan.ir, values):
            regions = compute_tile_regions(
                plan.ir, gp.transforms, gp.ordered_stages, gp.liveouts,
                tile_box, values)
            for stage in scratch:
                if stage not in regions:
                    continue
                sizes = gen._scratch_size(stage, gp)
                for d, ivl in enumerate(regions[stage]):
                    assert ivl.size <= sizes[d]
