"""Tests for the OpenCV-style routine library."""

import numpy as np
import pytest

from repro.baselines import opencv_like as cv


RNG = np.random.default_rng(4)


def test_sep_filter_identity():
    img = RNG.random((16, 16), dtype=np.float32)
    out = cv.sep_filter2d(img, np.array([1.0]), np.array([1.0]))
    np.testing.assert_allclose(out, img)


def test_sep_filter_matches_direct_convolution():
    img = RNG.random((20, 20), dtype=np.float32)
    kx = np.array([1, 2, 1], np.float32) / 4
    ky = np.array([1, 0, -1], np.float32)
    out = cv.sep_filter2d(img, kx, ky)
    direct = np.zeros_like(img)
    for i, wx in enumerate(kx):
        for j, wy in enumerate(ky):
            sx, sy = i - 1, j - 1
            src = np.zeros_like(img)
            xs = slice(max(0, -sx), min(20, 20 - sx))
            ys = slice(max(0, -sy), min(20, 20 - sy))
            src[xs, ys] = img[max(0, sx):min(20, 20 + sx) or 20,
                              max(0, sy):min(20, 20 + sy) or 20]
            direct += wx * wy * src
    np.testing.assert_allclose(out[2:-2, 2:-2], direct[2:-2, 2:-2],
                               rtol=1e-5)


def test_gaussian_preserves_mean_interior():
    img = np.full((32, 32), 3.5, np.float32)
    out = cv.gaussian_blur5(img)
    np.testing.assert_allclose(out[4:-4, 4:-4], 3.5, rtol=1e-6)


def test_sobel_detects_edge_orientation():
    img = np.zeros((16, 16), np.float32)
    img[:, 8:] = 1.0  # vertical edge
    gx = cv.sobel(img, 1)
    gy = cv.sobel(img, 0)
    assert np.abs(gx[8, 7:9]).max() > 0.5
    assert np.abs(gy[4:12, 4:12]).max() < 1e-6


def test_box_filter_counts_neighbourhood():
    img = np.ones((8, 8), np.float32)
    out = cv.box_filter3(img)
    assert out[4, 4] == pytest.approx(9.0)


def test_pyr_down_halves():
    img = RNG.random((16, 16), dtype=np.float32)
    out = cv.pyr_down(img)
    assert out.shape == (8, 8)


def test_pyr_up_doubles():
    img = RNG.random((8, 8), dtype=np.float32)
    out = cv.pyr_up(img, (16, 16))
    assert out.shape == (16, 16)
    # nearest coarse values are averaged: output within input range
    assert out.min() >= img.min() - 1e-6
    assert out.max() <= img.max() + 1e-6


def test_unsharp_composition_shapes():
    img = RNG.random((3, 32, 32), dtype=np.float32)
    out = cv.unsharp_like(img)
    assert out.shape == img.shape
    assert np.isfinite(out).all()


def test_unsharp_flat_image_unchanged():
    img = np.full((3, 32, 32), 0.5, np.float32)
    out = cv.unsharp_like(img)
    np.testing.assert_allclose(out[:, 4:-4, 4:-4], 0.5, atol=1e-5)


def test_harris_composition_peaks_at_corner():
    img = np.zeros((32, 32), np.float32)
    img[8:24, 8:24] = 1.0  # a square: four corners
    response = cv.harris_like(img)
    peak = np.unravel_index(np.argmax(response), response.shape)
    corners = {(7, 7), (7, 8), (8, 8), (8, 7), (7, 23), (8, 23), (7, 24),
               (8, 24), (23, 7), (23, 8), (24, 7), (24, 8), (23, 23),
               (23, 24), (24, 23), (24, 24)}
    assert tuple(peak) in corners


def test_pyramid_blend_selects_by_mask():
    a = np.full((3, 32, 32), 1.0, np.float32)
    b = np.zeros((3, 32, 32), np.float32)
    mask = np.zeros((32, 32), np.float32)
    mask[:, :16] = 1.0
    out = cv.pyramid_blend_like(a, b, mask, levels=3)
    assert out[:, 12:20, 2:6].mean() > 0.8   # left: image a
    assert out[:, 12:20, 26:30].mean() < 0.2  # right: image b
