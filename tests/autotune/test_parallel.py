"""Parallel autotuning: compile farm, skip recording, report JSON."""

import numpy as np
import pytest

from repro.apps.harris import build_pipeline
from repro.autotune import farm as farm_mod
from repro.autotune.farm import (
    CompileTask, compile_one, rebind_values, run_compile_farm,
)
from repro.autotune.tuner import (
    SkippedConfig, TuneConfig, TuneResult, TuningReport, autotune,
)
from repro.codegen.build import compiler_available


@pytest.fixture(scope="module")
def harris_small():
    app = build_pipeline()
    R, C = app.params["R"], app.params["C"]
    values = {R: 96, C: 96}
    inputs = app.make_inputs(values, np.random.default_rng(1))
    return app, values, inputs


SPACE = [TuneConfig((16, 16), 0.4), TuneConfig((32, 32), 0.4),
         TuneConfig((16, 64), 0.2), TuneConfig((64, 64), 0.5)]


def test_parallel_interp_matches_serial_coverage(harris_small):
    """Workers change wall-clock, not the set or order of measurements."""
    app, values, inputs = harris_small
    serial = autotune(app.outputs, values, values, inputs, space=SPACE,
                      backend="interp", n_threads=2, repeats=1)
    parallel = autotune(app.outputs, values, values, inputs, space=SPACE,
                        backend="interp", n_threads=2, repeats=1,
                        n_workers=2)
    assert [r.config for r in serial.results] == \
        [r.config for r in parallel.results] == SPACE
    assert parallel.n_workers == 2 and serial.n_workers == 1
    assert not serial.skipped and not parallel.skipped


@pytest.mark.skipif(not compiler_available(), reason="no C compiler")
def test_second_native_run_all_cache_hits(harris_small, tmp_path):
    app, values, inputs = harris_small
    first = autotune(app.outputs, values, values, inputs, space=SPACE[:3],
                     n_threads=2, repeats=1, n_workers=2,
                     cache_dir=tmp_path)
    assert first.cache_misses == 3 and first.cache_hits == 0
    second = autotune(app.outputs, values, values, inputs, space=SPACE[:3],
                      n_threads=2, repeats=1, n_workers=2,
                      cache_dir=tmp_path)
    assert second.all_cache_hits
    assert second.cache_hits == 3
    data = second.to_dict()
    assert data["cache"] == {"hits": 3, "misses": 0}
    assert all(r["cache_hit"] for r in data["results"])


def test_plan_failure_recorded_not_fatal(harris_small, monkeypatch):
    """A middle-end crash on one configuration skips it with a reason."""
    app, values, inputs = harris_small
    real_compile_plan = farm_mod.compile_plan

    def exploding(outputs, estimates, options):
        if options.tile_sizes == (32, 32):
            raise RuntimeError("synthetic middle-end failure")
        return real_compile_plan(outputs, estimates, options)

    monkeypatch.setattr(farm_mod, "compile_plan", exploding)
    report = autotune(app.outputs, values, values, inputs, space=SPACE,
                      backend="interp", n_threads=2, repeats=1)
    assert [r.config for r in report.results] == \
        [c for c in SPACE if c.tile_sizes != (32, 32)]
    assert len(report.skipped) == 1
    skip = report.skipped[0]
    assert skip.config.tile_sizes == (32, 32)
    assert "plan" in skip.reason and "synthetic" in skip.reason


@pytest.mark.skipif(not compiler_available(), reason="no C compiler")
def test_build_failure_recorded_not_fatal(harris_small, monkeypatch,
                                          tmp_path):
    """A BuildError on one configuration must not abort the sweep."""
    from repro.codegen import build as build_mod
    app, values, inputs = harris_small
    real = build_mod.compile_artifact
    calls = []

    def failing(plan, **kwargs):
        calls.append(plan)
        if len(calls) == 1:
            raise build_mod.BuildError("synthetic compiler explosion")
        return real(plan, **kwargs)

    monkeypatch.setattr(build_mod, "compile_artifact", failing)
    report = autotune(app.outputs, values, values, inputs, space=SPACE[:2],
                      n_threads=2, repeats=1, cache_dir=tmp_path)
    assert len(report.results) == 1
    assert len(report.skipped) == 1
    assert report.skipped[0].reason.startswith("build:")
    assert "synthetic compiler explosion" in report.skipped[0].reason


def test_invalid_options_recorded_not_fatal(harris_small):
    """A config whose options are invalid (tile size 0) is skipped with
    a reason instead of aborting the sweep at task construction."""
    app, values, inputs = harris_small
    space = [TuneConfig((0, 0), 0.4), TuneConfig((16, 16), 0.4)]
    report = autotune(app.outputs, values, values, inputs, space=space,
                      backend="interp", n_threads=2, repeats=1)
    assert [r.config for r in report.results] == [space[1]]
    assert len(report.skipped) == 1
    assert report.skipped[0].reason.startswith("options:")


def test_report_json_roundtrip():
    report = TuningReport(
        results=[TuneResult(TuneConfig((16, 64), 0.4), 12.5, 4.25, 3,
                            compile_s=1.5, cache_hit=False)],
        skipped=[SkippedConfig(TuneConfig((8, 8), 0.2), "plan: boom")],
        elapsed_s=9.75, backend="native", n_workers=4, n_threads=8)
    back = TuningReport.from_json(report.to_json())
    assert back.results == report.results
    assert back.skipped == report.skipped
    assert back.elapsed_s == report.elapsed_s
    assert back.n_workers == 4 and back.n_threads == 8
    assert back.best().config == TuneConfig((16, 64), 0.4)


def test_report_save_load(tmp_path):
    report = TuningReport(
        results=[TuneResult(TuneConfig((32,), 0.2), 1.0, 0.5, 1)],
        backend="interp")
    path = report.save(tmp_path / "report.json")
    assert TuningReport.load(path).results == report.results


def test_rebind_values_after_pickle(harris_small):
    """Plans that crossed a process boundary get name-matched mappings."""
    import pickle
    app, values, inputs = harris_small
    task = CompileTask(0, tuple(app.outputs), dict(values),
                       TuneConfig((16, 16), 0.4).options(),
                       backend="interp")
    record = pickle.loads(pickle.dumps(compile_one(task)))
    params, images = rebind_values(record.plan, values, inputs)
    assert len(params) == len(values) and len(images) == len(inputs)
    assert all(k in record.plan.estimates for k in params)
    from repro.runtime.executor import execute_plan
    out = execute_plan(record.plan, params, images)
    assert out["harris"].shape


def test_farm_serial_path_yields_in_order(harris_small):
    app, values, inputs = harris_small
    tasks = [CompileTask(i, tuple(app.outputs), dict(values),
                         c.options(), backend="interp")
             for i, c in enumerate(SPACE[:2])]
    records = list(run_compile_farm(tasks, n_workers=1))
    assert [r.index for r in records] == [0, 1]
    assert all(r.ok and r.n_groups > 0 for r in records)


def test_random_search_parallel_and_skips(harris_small):
    from repro.autotune.random_search import random_search
    app, values, inputs = harris_small
    serial = random_search(app.outputs, values, values, inputs,
                           budget=3, backend="interp", seed=3)
    parallel = random_search(app.outputs, values, values, inputs,
                             budget=3, backend="interp", seed=3,
                             n_workers=2)
    assert [r.config for r in serial.results] == \
        [r.config for r in parallel.results]
    data = parallel.to_dict()
    assert len(data["results"]) == len(parallel.results)
