"""Tests for the model-driven autotuner and the stochastic baseline."""

import numpy as np
import pytest

from repro.apps.harris import build_pipeline
from repro.autotune.random_search import (
    SearchReport, random_search, sample_config,
)
from repro.autotune.tuner import (
    TuneConfig, TuningReport, autotune, default_space,
)


def test_default_space_size_matches_paper():
    """Seven tile sizes per dimension, three thresholds: 147 configs for
    two tilable dimensions (Section 3.8)."""
    space = default_space(2)
    assert len(space) == 7 * 7 * 3 == 147
    assert len(default_space(4)) == 7 ** 4 * 3


def test_tune_config_options():
    config = TuneConfig((32, 256), 0.4)
    options = config.options()
    assert options.tile_sizes == (32, 256)
    assert options.overlap_threshold == 0.4
    assert "32x256" in str(config)


@pytest.fixture(scope="module")
def harris_small():
    app = build_pipeline()
    R, C = app.params["R"], app.params["C"]
    values = {R: 96, C: 96}
    inputs = app.make_inputs(values, np.random.default_rng(1))
    return app, values, inputs


def test_autotune_interp_backend(harris_small):
    app, values, inputs = harris_small
    space = [TuneConfig((16, 16), 0.4), TuneConfig((32, 32), 0.4)]
    report = autotune(app.outputs, values, values, inputs, space=space,
                      backend="interp", n_threads=2, repeats=1)
    assert len(report.results) == 2
    best = report.best()
    assert best in report.results
    assert all(r.time_single_ms > 0 and r.time_parallel_ms > 0
               for r in report.results)


def test_autotune_scatter_shape(harris_small):
    app, values, inputs = harris_small
    space = [TuneConfig((16, 16), 0.2), TuneConfig((16, 16), 0.5)]
    report = autotune(app.outputs, values, values, inputs, space=space,
                      backend="interp", repeats=1)
    points = report.scatter()
    assert len(points) == 2
    assert all(len(p) == 2 for p in points)


def test_empty_report_raises():
    with pytest.raises(ValueError):
        TuningReport().best()
    with pytest.raises(ValueError):
        SearchReport().best()


def test_sample_config_in_bounds():
    rng = np.random.default_rng(0)
    for _ in range(50):
        config = sample_config(rng, 2)
        assert all(4 <= t <= 1024 and (t & (t - 1)) == 0
                   for t in config.tile_sizes)
        assert 0.05 <= config.overlap_threshold <= 1.0


def test_random_search_runs(harris_small):
    app, values, inputs = harris_small
    report = random_search(app.outputs, values, values, inputs,
                           budget=3, backend="interp", seed=3)
    assert len(report.results) >= 1
    trajectory = report.trajectory()
    assert trajectory == sorted(trajectory, reverse=True) or \
        all(trajectory[i + 1] <= trajectory[i]
            for i in range(len(trajectory) - 1))


def test_random_search_deterministic_per_seed(harris_small):
    app, values, inputs = harris_small
    rng = np.random.default_rng(42)
    a = [sample_config(np.random.default_rng(9), 2) for _ in range(5)]
    b = [sample_config(np.random.default_rng(9), 2) for _ in range(5)]
    assert a == b
