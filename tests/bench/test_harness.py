"""Tests for the bench harness and figure modules (fast paths only)."""

import io

import numpy as np
import pytest

from repro.bench import figure5, figure6, figure8
from repro.bench.harness import (
    APP_BUILDERS, DEFAULT_TILES, PAPER_TABLE2, SIZES, TimingStats,
    format_table, make_instance, time_ms, time_stats, variant_options,
)


def test_every_app_has_harness_metadata():
    for name in APP_BUILDERS:
        assert name in SIZES["paper"]
        assert name in SIZES["small"]
        assert name in DEFAULT_TILES
        if name != "iunsharp":  # not a paper benchmark: no Table 2 row
            assert name in PAPER_TABLE2


def test_paper_sizes_match_table2():
    assert SIZES["paper"]["harris"] == (6400, 6400)
    assert SIZES["paper"]["camera"] == (2528, 1920)
    assert SIZES["paper"]["unsharp"] == (2048, 2048)


def test_make_instance_tiny():
    instance = make_instance("harris", "tiny")
    assert instance.name == "harris"
    rows, cols = SIZES["tiny"]["harris"]
    assert list(instance.values.values()) == [rows, cols]
    img = next(iter(instance.inputs.values()))
    assert img.shape == (rows + 2, cols + 2)


def test_variant_options():
    options, vec = variant_options("harris", "base")
    assert not options.group and not options.tile and not vec
    options, vec = variant_options("harris", "opt+vec")
    assert options.group and options.tile and vec
    assert options.tile_sizes == DEFAULT_TILES["harris"]


def test_time_ms_discards_first_run():
    calls = []

    def fn():
        calls.append(1)

    t = time_ms(fn, runs=4)
    assert len(calls) == 4
    assert t >= 0


def test_time_stats_protocol():
    calls = []

    def fn():
        calls.append(1)

    stats = time_stats(fn, runs=5)
    assert len(calls) == 5
    assert stats.runs == 4  # warm-up discarded
    assert 0 <= stats.min_ms <= stats.mean_ms
    assert stats.std_ms >= 0
    d = stats.as_dict()
    assert set(d) == {"min_ms", "mean_ms", "std_ms", "runs"}
    assert "min" in stats.render() and "mean" in stats.render()


def test_timing_stats_from_times():
    stats = TimingStats.from_times([2.0, 4.0, 6.0])
    assert stats.min_ms == 2.0
    assert stats.mean_ms == 4.0
    assert stats.runs == 3
    assert stats.std_ms == pytest.approx(np.std([2.0, 4.0, 6.0]))


def test_time_ms_is_mean_of_kept_runs():
    # compat shim: time_ms must agree with time_stats' mean
    import itertools
    ticks = itertools.count()

    def fn():
        next(ticks)

    assert time_ms(fn, runs=3) >= 0


def test_format_table_alignment():
    text = format_table(["a", "bbb"], [[1, 2.5], [None, "x"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert all(len(l) == len(lines[0]) for l in lines)
    assert "2.50" in text and "-" in text


def test_figure5_module():
    out = io.StringIO()
    stats = figure5.run_figure5(size=512, tile=32, out=out)
    text = out.getvalue()
    assert "overlapped" in text and "parallelogram" in text
    over, split, para = stats
    assert over.parallel and not para.parallel
    assert over.redundancy > 0 and split.redundancy == 0


def test_figure6_module():
    out = io.StringIO()
    tight, naive = figure6.run_figure6(out=out)
    text = out.getvalue()
    assert "tight" in text and "naive" in text
    assert "over-approximation" in text


def test_figure8_module():
    out = io.StringIO()
    plan = figure8.run_figure8(levels=3, size=256, tiles=(8, 32, 32),
                               out=out)
    text = out.getvalue()
    assert "groups" in text
    assert len(plan.group_plans) < len(plan.ir.stages)


def test_spec_lines_in_paper_ballpark():
    """Table 2's LoC column: our DSL specs are the same order of
    magnitude as the paper's (16-107 lines)."""
    from repro.bench.harness import spec_lines
    for name in APP_BUILDERS:
        lines = spec_lines(name)
        assert 10 < lines < 200, (name, lines)


def test_paper_table2_reference_values():
    """The paper's own numbers, transcribed for the comparison columns."""
    assert PAPER_TABLE2["harris"]["t16_ms"] == 18.69
    assert PAPER_TABLE2["local_laplacian"]["stages"] == 99
    assert PAPER_TABLE2["camera"]["speedup_htuned"] == 1.04
