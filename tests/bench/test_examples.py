"""Smoke-run every example script at a small size (examples must not rot)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


@pytest.mark.parametrize("script,args", [
    ("quickstart.py", []),
    ("harris_corners.py", ["64", "64"]),
    ("pyramid_blend.py", ["64"]),
    ("camera_raw.py", ["64", "64"]),
    ("show_generated_code.py", []),
    ("parallel_autotune.py", ["96", "2"]),
])
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()
