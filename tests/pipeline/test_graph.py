"""Tests for pipeline graph extraction, using the Harris app (Figure 2)."""

import pytest

from repro.apps.harris import build_pipeline
from repro.lang import (
    Accumulate, Accumulator, Case, Float, Function, Image, Int, Interval,
    Parameter, Sum, UChar, Variable,
)
from repro.pipeline.graph import CycleError, PipelineGraph, stage_references


@pytest.fixture(scope="module")
def harris_graph():
    app = build_pipeline()
    return PipelineGraph(app.outputs)


def test_harris_has_eleven_stages(harris_graph):
    # Table 2 lists Harris corner detection with 11 stages.
    assert len(harris_graph) == 11


def test_harris_single_input(harris_graph):
    assert len(harris_graph.inputs) == 1
    assert harris_graph.inputs[0].name == "I"


def test_harris_levels_match_figure2(harris_graph):
    by_name = {s.name: s for s in harris_graph.stages}
    level = harris_graph.level
    assert level(by_name["Ix"]) == 0 and level(by_name["Iy"]) == 0
    assert level(by_name["Ixx"]) == 1 and level(by_name["Ixy"]) == 1
    assert level(by_name["Sxx"]) == 2
    assert level(by_name["det"]) == 3 and level(by_name["trace"]) == 3
    assert level(by_name["harris"]) == 4


def test_harris_producers_consumers(harris_graph):
    by_name = {s.name: s for s in harris_graph.stages}
    prods = {p.name for p in harris_graph.producers(by_name["Ixy"])}
    assert prods == {"Ix", "Iy"}
    cons = {c.name for c in harris_graph.consumers(by_name["Sxx"])}
    assert cons == {"det", "trace"}


def test_topological_order_respects_dependences(harris_graph):
    order = harris_graph.topological_order()
    pos = {s: i for i, s in enumerate(order)}
    for producer, consumer in harris_graph.edges():
        assert pos[producer] < pos[consumer]


def test_outputs_flagged(harris_graph):
    by_name = {s.name: s for s in harris_graph.stages}
    assert harris_graph.is_output(by_name["harris"])
    assert not harris_graph.is_output(by_name["Ix"])


def test_dot_output_mentions_stages(harris_graph):
    dot = harris_graph.dot()
    assert '"Ix" -> "Ixx"' in dot
    assert '"I" [shape=box]' in dot


def test_stage_references_counts():
    app = build_pipeline()
    by_name = {s.name: s for s in PipelineGraph(app.outputs).stages}
    # Sxx reads 9 taps of Ixx
    assert len(stage_references(by_name["Sxx"])) == 9


def test_cycle_detection():
    x = Variable("x")
    ivl = Interval(0, 31, 1)
    a = Function(varDom=([x], [ivl]), typ=Float, name="a")
    b = Function(varDom=([x], [ivl]), typ=Float, name="b")
    a.defn = b(x)
    b.defn = a(x)
    with pytest.raises(CycleError):
        PipelineGraph([a])


def test_self_reference_is_not_a_cycle():
    t, x = Variable("t"), Variable("x")
    f = Function(varDom=([t, x], [Interval(0, 7, 1), Interval(0, 31, 1)]),
                 typ=Float, name="f")
    f.defn = [Case(t >= 1, f(t - 1, x)), Case(t < 1, 0.0)]
    g = PipelineGraph([f])
    assert f in g.self_referential
    assert len(g) == 1


def test_accumulator_in_graph():
    R = Parameter(Int, "R")
    I = Image(UChar, [R, R], name="I")
    x, y, b = Variable("x"), Variable("y"), Variable("b")
    ivl = Interval(0, R - 1, 1)
    hist = Accumulator(redDom=([x, y], [ivl, ivl]),
                       varDom=([b], [Interval(0, 255, 1)]),
                       typ=Int, name="hist")
    hist.defn = Accumulate(hist(I(x, y)), 1, Sum)
    g = PipelineGraph([hist])
    assert len(g) == 1
    assert g.inputs == [I]


def test_empty_outputs_rejected():
    with pytest.raises(ValueError):
        PipelineGraph([])


def test_non_stage_output_rejected():
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    with pytest.raises(TypeError):
        PipelineGraph([I])  # images are inputs, not stages
