"""Failure injection: invalid specifications must fail loudly and early."""

import numpy as np
import pytest

from repro import CompileOptions, compile_pipeline
from repro.lang import (
    Case, Condition, Float, Function, Image, Int, Interval, Parameter,
    Variable,
)
from repro.pipeline.boundscheck import BoundsError
from repro.pipeline.graph import CycleError, PipelineGraph
from repro.runtime.executor import ExecutionError

R = None  # rebuilt per test; parameters are identity objects


def _simple(name="f", hi=None):
    p = Parameter(Int, "R")
    x = Variable("x")
    hi = p - 1 if hi is None else hi
    f = Function(varDom=([x], [Interval(0, hi, 1)]), typ=Float, name=name)
    return p, x, f


def test_duplicate_stage_names_rejected():
    p, x, f = _simple("dup")
    g = Function(varDom=([x], [Interval(0, p - 1, 1)]), typ=Float,
                 name="dup")
    f.defn = x * 1.0
    g.defn = f(x)
    with pytest.raises(ValueError, match="unique"):
        PipelineGraph([g])


def test_cycle_rejected_at_graph_build():
    p, x, f = _simple("a")
    g = Function(varDom=([x], [Interval(0, p - 1, 1)]), typ=Float, name="b")
    f.defn = g(x)
    g.defn = f(x + 1)
    with pytest.raises(CycleError):
        compile_pipeline([f], {p: 16})


def test_bounds_error_at_compile_time():
    p, x, f = _simple()
    I = Image(Float, [p], name="I")
    f.defn = I(x + 10)
    with pytest.raises(BoundsError):
        compile_pipeline([f], {p: 16})


def test_undefined_stage_rejected():
    p, x, f = _simple()
    with pytest.raises(ValueError, match="no definition"):
        compile_pipeline([f], {p: 16})


def test_empty_domain_under_execution_params():
    p, x, f = _simple()
    I = Image(Float, [p], name="I")
    f.defn = I(x)
    compiled = compile_pipeline([f], {p: 16}, CompileOptions.base())
    with pytest.raises(ExecutionError):
        compiled({p: 0}, {I: np.zeros(0, np.float32)})


def test_forward_self_reference_rejected_at_execution():
    p, x, f = _simple()
    I = Image(Float, [p], name="I")
    f.defn = [Case(Condition(x, "==", p - 1), I(x)),
              Case(Condition(x, "<", p - 1), f(x + 1) * 0.5)]
    compiled = compile_pipeline([f], {p: 16})
    with pytest.raises(ExecutionError, match="forward self-reference"):
        compiled({p: 16}, {I: np.zeros(16, np.float32)})


def test_wrong_dtype_input_coerced_or_checked():
    p, x, f = _simple()
    I = Image(Float, [p], name="I")
    f.defn = I(x) * 2.0
    compiled = compile_pipeline([f], {p: 8}, CompileOptions.base())
    # integer input is coerced to the declared image dtype
    out = compiled({p: 8}, {I: np.arange(8)})["f"]
    np.testing.assert_array_equal(out, np.arange(8) * 2.0)


def test_missing_parameter_value():
    p, x, f = _simple()
    I = Image(Float, [p], name="I")
    f.defn = I(x)
    compiled = compile_pipeline([f], {p: 8}, CompileOptions.base())
    with pytest.raises(KeyError):
        compiled({}, {I: np.zeros(8, np.float32)})


def test_invalid_options():
    with pytest.raises(ValueError):
        CompileOptions(tile_sizes=())
    with pytest.raises(ValueError):
        CompileOptions(tile_sizes=(0,))
    with pytest.raises(ValueError):
        CompileOptions(overlap_threshold=0)


def test_ambiguous_interval_bounds_rejected():
    p = Parameter(Int, "R")
    x, y = Variable("x"), Variable("y")
    with pytest.raises(ValueError, match="affine"):
        f = Function(varDom=([x], [Interval(0, y, 1)]), typ=Float,
                     name="f")
        f.defn = x * 1.0
        compile_pipeline([f], {p: 8})
