"""Tests for the static bounds checker."""

import pytest

from repro.apps.harris import build_pipeline
from repro.lang import (
    Case, Cast, Condition, Float, Function, Image, Int, Interval, Parameter,
    Variable,
)
from repro.pipeline.boundscheck import BoundsError, check_bounds
from repro.pipeline.graph import PipelineGraph
from repro.pipeline.ir import PipelineIR


def test_harris_passes_bounds_check():
    app = build_pipeline()
    ir = PipelineIR(PipelineGraph(app.outputs))
    R, C = app.params["R"], app.params["C"]
    check_bounds(ir, {R: 64, C: 64})  # must not raise


def test_out_of_bounds_stencil_detected():
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    x = Variable("x")
    f = Function(varDom=([x], [Interval(0, R - 1, 1)]), typ=Float, name="f")
    f.defn = I(x + 1)  # reads I(R) at x = R-1, outside [0, R-1]
    ir = PipelineIR(PipelineGraph([f]))
    with pytest.raises(BoundsError) as err:
        check_bounds(ir, {R: 16})
    assert "f" in str(err.value) and "I" in str(err.value)


def test_case_condition_makes_access_safe():
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    x = Variable("x")
    f = Function(varDom=([x], [Interval(0, R - 1, 1)]), typ=Float, name="f")
    f.defn = [Case(Condition(x, "<=", R - 2), I(x + 1)),
              Case(Condition(x, ">", R - 2), I(x))]
    ir = PipelineIR(PipelineGraph([f]))
    check_bounds(ir, {R: 16})  # must not raise


def test_function_to_function_bounds():
    R = Parameter(Int, "R")
    x = Variable("x")
    g = Function(varDom=([x], [Interval(2, R, 1)]), typ=Float, name="g")
    g.defn = x * 1.0
    f = Function(varDom=([x], [Interval(0, R, 1)]), typ=Float, name="f")
    f.defn = g(x)  # g undefined on [0, 2)
    ir = PipelineIR(PipelineGraph([f]))
    with pytest.raises(BoundsError):
        check_bounds(ir, {R: 16})


def test_downsample_bounds():
    R = Parameter(Int, "R")
    x = Variable("x")
    g = Function(varDom=([x], [Interval(0, R, 1)]), typ=Float, name="g")
    g.defn = x * 1.0
    # domain upper bound (R - 2) / 2 is affine (rational), floored when
    # concretised: x in [0, 7] for R = 16.
    down = Function(varDom=([x], [Interval(0, (R - 2) / 2, 1)]), typ=Float,
                    name="down")
    down.defn = g(2 * x + 1)
    ir = PipelineIR(PipelineGraph([down]))
    check_bounds(ir, {R: 16})  # 2x+1 over [0,7] -> [1,15] within [0,16]


def test_accumulator_bounds_checked():
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    x = Variable("x")
    b = Variable("b")
    from repro.lang import Accumulate, Accumulator, Sum
    hist = Accumulator(redDom=([x], [Interval(0, R, 1)]),  # off by one!
                       varDom=([b], [Interval(0, 255, 1)]),
                       typ=Int, name="hist")
    hist.defn = Accumulate(hist(Cast(Int, I(x))), 1, Sum)
    ir = PipelineIR(PipelineGraph([hist]))
    with pytest.raises(BoundsError):
        check_bounds(ir, {R: 16})


def test_violation_message_mentions_ranges():
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    x = Variable("x")
    f = Function(varDom=([x], [Interval(0, R - 1, 1)]), typ=Float, name="f")
    f.defn = I(x + 5)
    ir = PipelineIR(PipelineGraph([f]))
    try:
        check_bounds(ir, {R: 16})
        raise AssertionError("expected BoundsError")
    except BoundsError as err:
        v = err.violations[0]
        assert v.dim == 0
        assert v.access_range.hi == 20
        assert v.domain_range.hi == 15
