"""Unit tests for the expression/condition rewriters used by inlining."""

import pytest

from repro.lang import (
    Case, Cast, Condition, Exp, Float, Function, Image, Int, Interval,
    Parameter, Select, Variable,
)
from repro.lang.expr import (
    BinOp, Call, CondAnd, Literal, Reference, TrueCond, UnOp, references,
)
from repro.pipeline.inline import rewrite_condition, rewrite_expr


@pytest.fixture()
def env():
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    J = Image(Float, [R], name="J")
    x = Variable("x")
    return R, I, J, x


def test_rewrite_replaces_references(env):
    R, I, J, x = env

    def swap(ref):
        if ref.function is I:
            return Reference(J, ref.args)
        return None

    out = rewrite_expr(I(x) + I(x + 1) * 2, swap)
    refs = list(references(out))
    assert all(r.function is J for r in refs)
    assert len(refs) == 2


def test_rewrite_keeps_structure(env):
    R, I, J, x = env
    expr = Exp(-(I(x) * I(x))) + Cast(Float, x) - Select(x > 0, 1.0, 0.0)
    out = rewrite_expr(expr, lambda ref: None)
    # structurally identical: same reference count and node kinds
    assert repr(out) == repr(expr)


def test_rewrite_args_before_replacement(env):
    """Nested references inside index expressions are rewritten first."""
    R, I, J, x = env
    lut = Image(Float, [R], name="lut")
    expr = lut(Cast(Int, I(x) * 3.0))

    seen = []

    def record(ref):
        seen.append(ref.function.name)
        return None

    rewrite_expr(expr, record)
    assert seen == ["I", "lut"]  # innermost first


def test_rewrite_replacement_expression_substituted(env):
    R, I, J, x = env

    def inline_body(ref):
        if ref.function is I:
            return ref.args[0] * 2.0  # body: I(e) -> e * 2
        return None

    out = rewrite_expr(I(x + 1), inline_body)
    assert isinstance(out, BinOp)
    assert repr(out) == repr((x + 1) * 2.0)


def test_rewrite_condition_recurses(env):
    R, I, J, x = env
    cond = (Condition(I(x), ">", 0.5) & Condition(x, "<=", R))

    def swap(ref):
        return Reference(J, ref.args) if ref.function is I else None

    out = rewrite_condition(cond, swap)
    assert isinstance(out, CondAnd)
    assert "J(" in repr(out) and "I(" not in repr(out)


def test_rewrite_condition_true_passthrough():
    t = TrueCond()
    assert rewrite_condition(t, lambda r: None) is t


def test_rewrite_literals_and_leaves(env):
    R, I, J, x = env
    lit = Literal(5)
    assert rewrite_expr(lit, lambda r: None) is lit
    assert rewrite_expr(x, lambda r: None) is x
    assert rewrite_expr(R, lambda r: None) is R
