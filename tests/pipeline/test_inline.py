"""Tests for point-wise inlining."""

import pytest

from repro.apps.harris import build_pipeline
from repro.lang import (
    Case, Condition, Float, Function, Image, Int, Interval, Parameter,
    Variable,
)
from repro.lang.expr import references
from repro.pipeline.graph import PipelineGraph
from repro.pipeline.inline import find_inlinable, inline_pipeline
from repro.pipeline.ir import PipelineIR


def test_harris_inlinable_set():
    """Point-wise stages Ixx/Ixy/Iyy/det/trace are inlined; stencils stay."""
    app = build_pipeline()
    ir = PipelineIR(PipelineGraph(app.outputs))
    R, C = app.params["R"], app.params["C"]
    names = {s.name for s in find_inlinable(ir, {R: 256, C: 256})}
    assert names == {"Ixx", "Ixy", "Iyy", "det", "trace"}


def test_harris_inlined_graph_matches_figure7():
    """After inlining the remaining stages are exactly the scratchpad/live
    set of the paper's Figure 7: Ix, Iy, Sxx, Sxy, Syy, harris."""
    app = build_pipeline()
    R, C = app.params["R"], app.params["C"]
    result = inline_pipeline(app.outputs, {R: 256, C: 256})
    graph = PipelineGraph(result.outputs)
    assert {s.name for s in graph.stages} == {
        "Ix", "Iy", "Sxx", "Sxy", "Syy", "harris"}
    assert len(result.inlined) == 5


def test_inlined_harris_output_references_s_stages():
    app = build_pipeline()
    R, C = app.params["R"], app.params["C"]
    result = inline_pipeline(app.outputs, {R: 256, C: 256})
    harris = result.outputs[0]
    producers = {r.function.name for r in references(harris.defn[0].expression)}
    assert producers == {"Sxx", "Syy", "Sxy"}


def test_inline_does_not_mutate_originals():
    app = build_pipeline()
    R, C = app.params["R"], app.params["C"]
    before = app.outputs[0].defn
    inline_pipeline(app.outputs, {R: 256, C: 256})
    assert app.outputs[0].defn is before
    # the original graph still has 11 stages
    assert len(PipelineGraph(app.outputs)) == 11


def test_inline_substitutes_with_offset_access():
    """A stencil consumer of a point-wise producer gets shifted copies."""
    R = Parameter(Int, "R")
    I = Image(Float, [R + 2], name="I")
    x = Variable("x")
    dom = Interval(0, R + 1, 1)
    sq = Function(varDom=([x], [dom]), typ=Float, name="sq")
    sq.defn = I(x) * I(x)
    blur = Function(varDom=([x], [dom]), typ=Float, name="blur")
    blur.defn = [Case(Condition(x, ">=", 1) & Condition(x, "<=", R),
                      sq(x - 1) + sq(x) + sq(x + 1))]
    result = inline_pipeline([blur], {R: 64})
    graph = PipelineGraph(result.outputs)
    assert {s.name for s in graph.stages} == {"blur"}
    expr = result.outputs[0].defn[0].expression
    refs = list(references(expr))
    # three copies of I(x)*I(x) at offsets -1, 0, +1 => six I references
    assert len(refs) == 6 and all(r.function is I for r in refs)


def test_inline_skipped_when_region_not_covered():
    """Producer defined on a narrower region than consumer accesses."""
    R = Parameter(Int, "R")
    I = Image(Float, [R + 2], name="I")
    x = Variable("x")
    dom = Interval(0, R + 1, 1)
    p = Function(varDom=([x], [dom]), typ=Float, name="p")
    p.defn = [Case(Condition(x, ">=", 5) & Condition(x, "<=", R), I(x) * 2)]
    q = Function(varDom=([x], [dom]), typ=Float, name="q")
    q.defn = p(x)  # accesses x in [0, R+1], outside p's case region
    result = inline_pipeline([q], {R: 64})
    assert {s.name for s in PipelineGraph(result.outputs).stages} == {"p", "q"}


def test_outputs_never_inlined():
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    x = Variable("x")
    dom = Interval(0, R - 1, 1)
    a = Function(varDom=([x], [dom]), typ=Float, name="a")
    a.defn = I(x) + 1
    b = Function(varDom=([x], [dom]), typ=Float, name="b")
    b.defn = a(x) * 2
    result = inline_pipeline([a, b], {R: 64})
    names = {s.name for s in PipelineGraph(result.outputs).stages}
    assert names == {"a", "b"}


def test_chain_of_pointwise_fully_folds():
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    x = Variable("x")
    dom = Interval(0, R - 1, 1)
    prev: Function | Image = I
    stages = []
    for i in range(4):
        f = Function(varDom=([x], [dom]), typ=Float, name=f"s{i}")
        f.defn = prev(x) + 1
        stages.append(f)
        prev = f
    result = inline_pipeline([stages[-1]], {R: 64})
    graph = PipelineGraph(result.outputs)
    assert {s.name for s in graph.stages} == {"s3"}
    # s3 = ((I(x)+1)+1)+1)+1 — one I reference
    refs = list(references(result.outputs[0].defn[0].expression))
    assert len(refs) == 1 and refs[0].function is I


def test_self_referential_stage_not_inlined():
    R = Parameter(Int, "R")
    t, x = Variable("t"), Variable("x")
    f = Function(varDom=([t, x], [Interval(0, 7, 1), Interval(0, R - 1, 1)]),
                 typ=Float, name="f")
    f.defn = [Case(t >= 1, f(t - 1, x) + 1), Case(t < 1, 0.0)]
    g = Function(varDom=([x], [Interval(0, R - 1, 1)]), typ=Float, name="g")
    g.defn = f(7, x)
    result = inline_pipeline([g], {R: 64})
    names = {s.name for s in PipelineGraph(result.outputs).stages}
    assert names == {"f", "g"}
