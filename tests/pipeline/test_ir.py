"""Tests for IR lowering: domains, cases, access classification."""

import pytest

from repro.apps.harris import build_pipeline
from repro.lang import (
    Accumulate, Accumulator, Case, Cast, Float, Function, Image, Int,
    Interval, Parameter, Sum, UChar, Variable,
)
from repro.pipeline.graph import PipelineGraph
from repro.pipeline.ir import PipelineIR
from repro.poly.interval import IntInterval


@pytest.fixture(scope="module")
def harris_ir():
    app = build_pipeline()
    ir = PipelineIR(PipelineGraph(app.outputs))
    return app, ir


def _stage(ir, name):
    for s in ir.stages.values():
        if s.name == name:
            return s
    raise KeyError(name)


def test_domains_concretize(harris_ir):
    app, ir = harris_ir
    R, C = app.params["R"], app.params["C"]
    ix = _stage(ir, "Ix")
    assert ix.domain.concretize({R: 10, C: 12}) == (
        IntInterval(0, 11), IntInterval(0, 13))


def test_case_boxes_tightened(harris_ir):
    app, ir = harris_ir
    R, C = app.params["R"], app.params["C"]
    sxx = _stage(ir, "Sxx")
    assert len(sxx.cases) == 1
    box = sxx.cases[0].box.concretize({R: 10, C: 10})
    assert box == (IntInterval(2, 9), IntInterval(2, 9))


def test_access_classification(harris_ir):
    app, ir = harris_ir
    sxx = _stage(ir, "Sxx")
    assert len(sxx.accesses) == 9
    assert all(a.is_affine for a in sxx.accesses)


def test_pointwise_detection(harris_ir):
    _, ir = harris_ir
    assert _stage(ir, "Ixx").is_pointwise
    assert _stage(ir, "det").is_pointwise
    assert _stage(ir, "harris").is_pointwise
    assert not _stage(ir, "Ix").is_pointwise  # stencil
    assert not _stage(ir, "Sxx").is_pointwise


def test_levels_and_output_flags(harris_ir):
    _, ir = harris_ir
    assert _stage(ir, "harris").is_output
    assert _stage(ir, "harris").level == 4
    assert not _stage(ir, "Iy").is_output


def test_size_estimate(harris_ir):
    app, ir = harris_ir
    R, C = app.params["R"], app.params["C"]
    harris = _stage(ir, "harris")
    assert harris.size_estimate({R: 62, C: 62}) == 64 * 64


def test_accumulator_lowering():
    R = Parameter(Int, "R")
    I = Image(UChar, [R, R], name="I")
    x, y, b = Variable("x"), Variable("y"), Variable("b")
    ivl = Interval(0, R - 1, 1)
    hist = Accumulator(redDom=([x, y], [ivl, ivl]),
                       varDom=([b], [Interval(0, 255, 1)]),
                       typ=Int, name="hist")
    hist.defn = Accumulate(hist(Cast(Int, I(x, y))), 1, Sum)
    ir = PipelineIR(PipelineGraph([hist]))
    sir = ir[hist]
    assert sir.is_accumulator
    assert sir.reduction_domain.concretize({R: 8}) == (
        IntInterval(0, 7), IntInterval(0, 7))
    assert sir.domain.concretize({R: 8}) == (IntInterval(0, 255),)
    # the histogram's target index I(x, y) is data-dependent
    assert not sir.is_pointwise
    assert any(not a.is_affine or a.producer is I for a in sir.accesses)


def test_data_dependent_access_forms():
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    lut = Image(Float, [R], name="lut")
    x = Variable("x")
    f = Function(varDom=([x], [Interval(0, R - 1, 1)]), typ=Float, name="f")
    f.defn = lut(Cast(Int, I(x) * 10))
    ir = PipelineIR(PipelineGraph([f]))
    sir = ir[f]
    lut_access = [a for a in sir.accesses if a.producer is lut][0]
    assert lut_access.forms == (None,)
    assert not lut_access.is_affine


def test_sampled_access_forms():
    R = Parameter(Int, "R")
    x = Variable("x")
    g = Function(varDom=([x], [Interval(0, R, 1)]), typ=Float, name="g")
    g.defn = x * 1.0
    up = Function(varDom=([x], [Interval(0, 2 * R, 1)]), typ=Float, name="up")
    up.defn = g(x // 2)
    ir = PipelineIR(PipelineGraph([up]))
    form = ir[up].accesses[0].forms[0]
    assert form is not None and form.divisor == 2
