"""Golden reports: every benchmark app verifies clean (zero errors).

The sizes and build kwargs mirror ``tests/apps/test_apps.py`` — the same
pipelines whose outputs are checked against the NumPy oracles must also
pass the static plan verifier, under both the default and the optimized
compile options.
"""

import pytest

from repro.apps import (
    bilateral, camera, harris, interpolate, iunsharp, laplacian, pyramid,
    unsharp,
)
from repro.compiler.options import CompileOptions
from repro.compiler.plan import compile_plan
from repro.verify import verify_plan

CASES = [
    ("unsharp", unsharp, {}, {"R": 48, "C": 40}),
    ("harris", harris, {}, {"R": 61, "C": 45}),
    ("bilateral", bilateral, {}, {"R": 64, "C": 48}),
    ("camera", camera, {}, {"R": 48, "C": 40}),
    ("pyramid_blend", pyramid, {"levels": 3}, {"R": 64, "C": 64}),
    ("interpolate", interpolate, {"levels": 4}, {"R": 64, "C": 64}),
    ("local_laplacian", laplacian, {"j_levels": 4, "levels": 3},
     {"R": 64, "C": 64}),
    ("iunsharp", iunsharp, {}, {"R": 48, "C": 40}),
]


def _compile(module, kwargs, size, options):
    app = module.build_pipeline(**kwargs)
    values = {app.params[k]: v for k, v in size.items()}
    return compile_plan(app.outputs, values, options)


@pytest.mark.parametrize("name,module,kwargs,size", CASES,
                         ids=[c[0] for c in CASES])
def test_app_verifies_clean(name, module, kwargs, size):
    plan = _compile(module, kwargs, size, CompileOptions())
    report = verify_plan(plan, name=name)
    assert report.ok, report.render()
    # no warnings either: only RV402 info notes (LUT accesses) are allowed
    assert not report.warnings, report.render()
    assert set(report.codes()) <= {"RV402"}, report.render()


@pytest.mark.parametrize("name,module,kwargs,size", CASES,
                         ids=[c[0] for c in CASES])
def test_app_verifies_clean_optimized(name, module, kwargs, size):
    plan = _compile(module, kwargs, size,
                    CompileOptions.optimized((16, 16, 16)))
    report = verify_plan(plan, name=name)
    assert report.ok, report.render()


def test_report_counts_work():
    plan = _compile(harris, {}, {"R": 61, "C": 45}, CompileOptions())
    report = verify_plan(plan)
    # every checker family examined something on a stencil pipeline
    for counter in ("edges", "halo_dims", "tiles", "scratch_dims",
                    "accesses", "boundaries", "bounds_accesses", "stages"):
        assert report.checked.get(counter, 0) > 0, counter
    assert report.elapsed_s > 0
    assert report.pipeline == "harris"


def test_generated_c_lints_clean():
    """The instrumented C backend's shared counters are all atomic."""
    plan = _compile(harris, {}, {"R": 61, "C": 45}, CompileOptions())
    report = verify_plan(plan, lint_c=True)
    assert report.ok, report.render()
    assert report.checked.get("c_lines", 0) > 0
