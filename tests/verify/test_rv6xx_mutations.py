"""Mutation tests for the RV6xx scheduling-hint audit.

Each test attaches one corrupted hint set to a *clean* compiled plan —
a stale stage name, a contradiction, a force/forbid/tile/inline
directive the plan visibly does not honour — and asserts the exact
diagnostic fires.  The checker re-derives hint satisfaction from the
final plan alone, so a compiler bug that silently drops or violates a
hint cannot certify itself.  The flip side is pinned too: plans
compiled *under* legal hints verify clean, and unhinted plans skip the
check entirely.
"""

import pytest

from repro.apps import iunsharp
from repro.compiler.options import CompileOptions
from repro.compiler.plan import compile_plan
from repro.schedule import ScheduleHints
from repro.verify import verify_plan


def _plan(options=None, hints=None):
    app = iunsharp.build_pipeline()
    values = {app.params["R"]: 48, app.params["C"]: 40}
    return compile_plan(app.outputs, values,
                        options or CompileOptions.optimized((16, 16)),
                        hints=hints)


@pytest.fixture()
def plan():
    """A fresh unhinted iunsharp plan: one tiled 16x16 group
    [iblurx, iblury, imasked], with isharp inlined away."""
    return _plan()


@pytest.fixture()
def split_plan():
    """The same pipeline under a threshold that keeps iblurx in its own
    group — two final groups to aim cross-group hints at."""
    return _plan(CompileOptions.optimized((16, 16), 0.01))


def test_clean_hinted_plan_passes():
    # hints the scheduler satisfies: force a merge it makes anyway,
    # restate the tile sizes, inline the stage it already inlines
    hints = ScheduleHints(force_group=[("iblurx", "iblury")],
                          tile_override=[("imasked", (16, 16))],
                          inline=("isharp",))
    hinted = _plan(hints=hints)
    report = verify_plan(hinted)
    assert report.ok, report.render()
    assert not any(c.startswith("RV6") for c in report.codes())
    assert report.checked["hint_directives"] == 3
    assert report.checked["hint_stages"] == 4


def test_stale_stage_name_fires_rv601(plan):
    plan.hints = ScheduleHints(force_group=[("iblurx", "ghost")])
    report = verify_plan(plan, checks=("hints",))
    assert report.codes() == {"RV601"}, report.render()
    [diag] = report.by_code("RV601")
    assert "ghost" in diag.message


def test_contradictory_hints_fire_rv602(split_plan):
    # force and forbid the same cross-group pair: the contradiction is
    # structural, before either directive is judged against the plan
    pair = ("iblurx", "iblury")
    split_plan.hints = ScheduleHints(force_group=[pair],
                                     forbid_group=[pair])
    report = verify_plan(split_plan, checks=("hints",))
    assert "RV602" in report.codes(), report.render()
    [diag] = report.by_code("RV602")
    assert "forced together and forbidden" in diag.message


def test_inline_vs_force_contradiction_fires_rv602(plan):
    plan.hints = ScheduleHints(force_group=[("isharp", "imasked")],
                               inline=("isharp",))
    report = verify_plan(plan, checks=("hints",))
    assert "RV602" in report.codes(), report.render()


def test_force_spanning_final_groups_fires_rv603(split_plan):
    # iblurx and imasked sit in different final groups of this plan;
    # a post-hoc force over them was visibly not honoured
    split_plan.hints = ScheduleHints(force_group=[("iblurx", "imasked")])
    report = verify_plan(split_plan, checks=("hints",))
    assert report.codes() == {"RV603"}, report.render()
    [diag] = report.by_code("RV603")
    assert "spans 2 final groups" in diag.message


def test_force_over_inlined_stage_fires_rv603(plan):
    # isharp was inlined away — it has no group to co-locate into
    plan.hints = ScheduleHints(force_group=[("isharp", "imasked")])
    report = verify_plan(plan, checks=("hints",))
    assert report.codes() == {"RV603"}, report.render()
    [diag] = report.by_code("RV603")
    assert "inlined away" in diag.message


def test_forbid_violated_fires_rv604(plan):
    # all three stages share the single final group
    plan.hints = ScheduleHints(forbid_group=[("iblurx", "iblury")])
    report = verify_plan(plan, checks=("hints",))
    assert report.codes() == {"RV604"}, report.render()
    [diag] = report.by_code("RV604")
    assert "share final group" in diag.message


def test_unapplied_tile_override_fires_rv605(plan):
    plan.hints = ScheduleHints(tile_override=[("iblurx", (64, 64))])
    report = verify_plan(plan, checks=("hints",))
    assert report.codes() == {"RV605"}, report.render()
    [diag] = report.by_code("RV605")
    assert "16x16" in diag.message


def test_tile_override_on_untiled_group_fires_rv605():
    base = _plan(CompileOptions.base())
    assert all(not gp.tile_sizes for gp in base.group_plans)
    base.hints = ScheduleHints(tile_override=[("imasked", (16, 16))])
    report = verify_plan(base, checks=("hints",))
    assert report.codes() == {"RV605"}, report.render()
    [diag] = report.by_code("RV605")
    assert "untiled group" in diag.message


def test_unapplied_inline_hint_fires_rv606(plan):
    # iblurx is a stencil stage the inliner must refuse
    plan.hints = ScheduleHints(inline=("iblurx",))
    report = verify_plan(plan, checks=("hints",))
    assert report.codes() == {"RV606"}, report.render()


def test_rv6xx_noop_without_hints(plan):
    assert plan.hints is None
    report = verify_plan(plan, checks=("hints",))
    assert report.ok
    assert "hint_directives" not in report.checked


def test_hint_check_runs_in_default_check_set(plan):
    plan.hints = ScheduleHints(forbid_group=[("iblurx", "iblury")])
    report = verify_plan(plan)  # no checks= filter
    assert "RV604" in report.codes(), report.render()
