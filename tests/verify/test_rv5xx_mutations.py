"""Mutation tests for the RV5xx value-range audit.

Each test corrupts one aspect of a *clean* narrowed plan — a bogus
narrowing decision, a lying claimed range, an under-sized narrowed
scratch allocation — and asserts the exact diagnostic fires.  The
checker re-derives ranges independently from the IR, so a corrupted
compiler-side result cannot certify itself.
"""

import pytest

from repro.analysis.ranges import ValueInterval
from repro.apps import iunsharp
from repro.compiler.options import CompileOptions
from repro.compiler.plan import compile_plan
from repro.lang import (
    Case, Condition, Double, Float, Function, Int, Interval, Parameter,
    UChar, UShort, Variable,
)
from repro.lang.types import Char
from repro.verify import verify_plan


@pytest.fixture()
def plan():
    """A fresh narrowed iunsharp plan (tiled, two UShort scratchpads)."""
    app = iunsharp.build_pipeline()
    values = {app.params["R"]: 48, app.params["C"]: 40}
    options = CompileOptions.optimized((16, 16)).with_narrow(True)
    return compile_plan(app.outputs, values, options)


def _stage(plan, name):
    return plan.stage_by_name(name)


def test_clean_narrowed_plan_passes(plan):
    by_name = {s.name: d for s, d in plan.narrowing.items()}
    assert by_name == {"iblurx": UShort, "iblury": UShort}
    report = verify_plan(plan)
    assert report.ok, report.render()
    assert not any(c.startswith("RV5") for c in report.codes())
    assert report.checked["range_stages"] > 0
    assert report.checked["narrowed"] == 2
    assert report.checked["narrow_scratch"] > 0


def test_unproven_integer_narrowing_fires_rv501(plan):
    # iblurx's true range is [0, 4080]; Char cannot hold it
    plan.narrowing[_stage(plan, "iblurx")] = Char
    report = verify_plan(plan, checks=("ranges",))
    assert "RV501" in report.codes(), report.render()
    [diag] = report.by_code("RV501")
    assert "4080" in diag.message


def test_narrowed_output_fires_rv501(plan):
    # outputs are caller-visible ABI: even a range-fitting narrowing of
    # one is structurally unsound
    plan.narrowing[_stage(plan, "imasked")] = Char
    report = verify_plan(plan, checks=("ranges",))
    assert "RV501" in report.codes(), report.render()


def test_unproven_float_narrowing_fires_rv502():
    R = Parameter(Int, "R")
    x = Variable("x")
    g = Function(varDom=([x], [Interval(0, R - 1)]), typ=Double, name="g")
    g.defn = [Case(Condition(x, ">=", 0), x * 0.5)]  # non-integral values
    out = Function(varDom=([x], [Interval(0, R - 1)]), typ=Double,
                   name="gout")
    out.defn = [Case(Condition(x, ">=", 0), g(x) + 1.0)]
    plan = compile_plan([out], {R: 32}, CompileOptions(inline=False))
    plan.narrowing = {plan.stage_by_name("g"): Float}
    report = verify_plan(plan, checks=("ranges",))
    assert "RV502" in report.codes(), report.render()
    [diag] = report.by_code("RV502")
    assert "not proven exactly representable" in diag.message


def test_lying_claimed_range_fires_rv503(plan):
    plan.value_ranges[_stage(plan, "iblury")] = ValueInterval(0, 10, True)
    report = verify_plan(plan, checks=("ranges",))
    assert "RV503" in report.codes(), report.render()
    [diag] = report.by_code("RV503")
    assert "65280" in diag.message  # the independently derived truth


def test_integral_claim_on_real_range_fires_rv503():
    # claiming integrality the derivation cannot prove is also a lie
    R = Parameter(Int, "R")
    x = Variable("x")
    f = Function(varDom=([x], [Interval(0, R - 1)]), typ=Float, name="fr")
    f.defn = [Case(Condition(x, ">=", 0), x * 0.5)]
    plan = compile_plan([f], {R: 32}, CompileOptions())
    plan.value_ranges = {
        plan.stage_by_name("fr"): ValueInterval(0, 16, True)}
    report = verify_plan(plan, checks=("ranges",))
    assert "RV503" in report.codes(), report.render()


def test_undersized_narrow_scratch_fires_rv504(plan):
    report = verify_plan(plan, checks=("ranges",),
                         narrow_scratch_bytes=lambda stage, gp: 1)
    assert "RV504" in report.codes(), report.render()
    diag = report.by_code("RV504")[0]
    assert "claims 1 bytes" in diag.message


def test_rv5xx_noop_without_narrowing():
    app = iunsharp.build_pipeline()
    values = {app.params["R"]: 48, app.params["C"]: 40}
    plan = compile_plan(app.outputs, values, CompileOptions())
    assert plan.narrowing is None and plan.value_ranges is None
    report = verify_plan(plan, checks=("ranges",))
    assert report.ok
    assert "range_stages" not in report.checked
