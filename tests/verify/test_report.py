"""The diagnostics model, severity overrides, JSON round-trips, the CLI,
and the verifier's integration points (compile_plan, CompiledPipeline,
autotune, explain)."""

import json

import numpy as np
import pytest

from repro import CompileOptions, compile_pipeline
from repro.apps import bilateral, harris, unsharp
from repro.autotune.tuner import TuneConfig, autotune
from repro.compiler.deps import NonConstantDependence
from repro.compiler.plan import compile_plan
from repro.pipeline.boundscheck import BoundsViolation
from repro.verify import (
    CHECKS, CODES, Diagnostic, VerifyError, VerifyReport, code_table,
    severity_of, verify_plan,
)
from repro.verify.__main__ import main as verify_main
from repro.verify.diagnostics import Emitter


@pytest.fixture(scope="module")
def harris_plan():
    app = harris.build_pipeline()
    values = {app.params["R"]: 61, app.params["C"]: 45}
    return compile_plan(app.outputs, values, CompileOptions())


# -- the diagnostic model -------------------------------------------------

def test_code_table_covers_every_code():
    table = code_table()
    assert all(code in table for code in CODES)


def test_diagnostic_render_and_roundtrip():
    diag = Diagnostic("RV002", "error", "halo too small", stage="blurx",
                      related=("blury",), group=1, hint="widen it")
    text = diag.render()
    assert "RV002" in text and "[blurx]" in text and "(group 1)" in text
    assert "hint: widen it" in text
    assert Diagnostic.from_dict(diag.to_dict()) == diag


def test_severity_of_and_overrides():
    assert severity_of("RV001") == "error"
    assert severity_of("RV402") == "info"
    assert severity_of("RV402", {"RV402": "error"}) == "error"
    with pytest.raises(ValueError):
        severity_of("RV999")


def test_emitter_rejects_bad_overrides_and_drops_ignored():
    with pytest.raises(ValueError):
        Emitter({"RV999": "error"})
    with pytest.raises(ValueError):
        Emitter({"RV001": "fatal"})
    emit = Emitter({"RV402": "ignore"})
    emit.emit("RV402", "dropped")
    emit.emit("RV401", "kept")
    assert [d.code for d in emit.diagnostics] == ["RV401"]


def test_report_json_roundtrip(tmp_path, harris_plan):
    report = verify_plan(harris_plan, name="harris")
    data = json.loads(report.to_json())
    assert data["pipeline"] == "harris" and data["ok"] is True
    path = report.save(tmp_path / "harris.json")
    loaded = VerifyReport.from_json(path.read_text())
    assert loaded.pipeline == report.pipeline
    assert loaded.diagnostics == report.diagnostics
    assert loaded.checked == report.checked


def test_verify_plan_rejects_unknown_check(harris_plan):
    with pytest.raises(ValueError):
        verify_plan(harris_plan, checks=("legality", "vibes"))


def test_severity_overrides_flow_through_verify():
    app = bilateral.build_pipeline()
    values = {app.params["R"]: 64, app.params["C"]: 48}
    plan = compile_plan(app.outputs, values, CompileOptions())
    assert verify_plan(plan).by_code("RV402")  # the LUT access notes
    escalated = verify_plan(plan, severity_overrides={"RV402": "error"})
    assert not escalated.ok
    silenced = verify_plan(plan, severity_overrides={"RV402": "ignore"})
    assert not silenced.by_code("RV402")


# -- integration: compile_plan / api hooks --------------------------------

def test_compile_plan_check_warn_attaches_report():
    app = unsharp.build_pipeline()
    values = {app.params["R"]: 48, app.params["C"]: 40}
    plan = compile_plan(app.outputs, values, CompileOptions(), check="warn")
    assert plan.verify_report is not None and plan.verify_report.ok
    strict = compile_plan(app.outputs, values, CompileOptions(),
                          check="strict")
    assert strict.verify_report.ok
    with pytest.raises(ValueError):
        compile_plan(app.outputs, values, CompileOptions(), check="loose")


def test_compiled_pipeline_verify_caches():
    app = unsharp.build_pipeline()
    values = {app.params["R"]: 48, app.params["C"]: 40}
    compiled = compile_pipeline(app.outputs, values, CompileOptions())
    report = compiled.verify()
    assert report.ok and report.pipeline == compiled.name
    assert compiled.plan.verify_report is report  # stashed on the plan
    strict = compiled.verify(strict=True)
    assert strict.ok


def test_compiled_pipeline_verify_strict_raises(monkeypatch):
    app = unsharp.build_pipeline()
    values = {app.params["R"]: 48, app.params["C"]: 40}
    compiled = compile_pipeline(app.outputs, values, CompileOptions())
    compiled.plan.group_plans[0].ordered_stages.reverse()
    with pytest.raises(VerifyError):
        compiled.verify(strict=True)


# -- integration: autotune skips configs that fail verification -----------

def test_autotune_skips_failing_configs(monkeypatch):
    app = harris.build_pipeline()
    R, C = app.params["R"], app.params["C"]
    values = {R: 96, C: 96}
    inputs = app.make_inputs(values, np.random.default_rng(7))
    space = [TuneConfig((16, 16), 0.4), TuneConfig((32, 32), 0.4)]

    bad = VerifyReport("x", [Diagnostic("RV002", "error", "halo too small",
                                        stage="Ix")])
    import repro.verify as verify_mod
    monkeypatch.setattr(verify_mod, "verify_plan", lambda plan: bad)
    report = autotune(app.outputs, values, values, inputs, space=space,
                      backend="interp", repeats=1)
    assert not report.results
    assert len(report.skipped) == 2
    assert all(s.reason.startswith("verify: RV002") for s in report.skipped)

    monkeypatch.undo()
    report = autotune(app.outputs, values, values, inputs, space=space,
                      backend="interp", repeats=1)
    assert len(report.results) == 2 and not report.skipped
    unverified = autotune(app.outputs, values, values, inputs, space=space,
                          backend="interp", repeats=1, verify=False)
    assert len(unverified.results) == 2


# -- integration: explain() names the diagnostic behind rejections --------

def test_explain_shows_verifier_diagnostic_for_rejections():
    app = bilateral.build_pipeline()
    values = {app.params["R"]: 64, app.params["C"]: 48}
    plan = compile_plan(app.outputs, values, CompileOptions())
    rejected = [d for d in plan.grouping.decisions if d.diagnostic]
    assert rejected, "bilateral's grid stages must defeat alignment"
    assert all(d.diagnostic.startswith("RV003") for d in rejected)
    text = plan.explain()
    assert "would fire: RV003" in text
    assert any("would fire" in json.dumps(d.to_dict())
               for d in plan.grouping.decisions) or \
        any(d.to_dict().get("diagnostic") for d in plan.grouping.decisions)


# -- satellites: bounds violations carry estimates; deps carry context ----

def test_bounds_violation_carries_estimates():
    v = BoundsViolation("cons", "prod", 0, "[1, 70]", "[0, 63]",
                        estimates=(("C", 45), ("R", 61)))
    text = str(v)
    assert "under C=45, R=61" in text


def test_nonconstant_dependence_context():
    exc = NonConstantDependence("range depends on R",
                                producer="blurx", consumer="blury",
                                dim=1, access="blurx(x, y+1)")
    text = str(exc)
    assert text.startswith("[blury -> blurx, dim 1, access blurx(x, y+1)]")
    assert "range depends on R" in text
    bare = NonConstantDependence("range depends on R")
    enriched = bare.with_context(producer="a", consumer="b")
    assert "[b -> a]" in str(enriched)
    # existing context wins over later, less specific context
    again = exc.with_context(producer="other")
    assert again.producer == "blurx"


# -- the CLI --------------------------------------------------------------

def test_cli_codes(capsys):
    assert verify_main(["--codes"]) == 0
    out = capsys.readouterr().out
    assert "RV001" in out and "RV405" in out


def test_cli_single_app_json(capsys, tmp_path):
    rc = verify_main(["harris", "--size", "64", "--strict",
                      "--json", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "harris: 0 errors" in out
    data = json.loads((tmp_path / "harris.json").read_text())
    assert data["ok"] is True


def test_cli_json_stdout(capsys):
    rc = verify_main(["unsharp", "--size", "48", "--json", "-"])
    assert rc == 0
    out = capsys.readouterr().out
    payload = out[out.index("["):]
    data = json.loads(payload)
    assert data[0]["pipeline"] == "unsharp"


def test_cli_rejects_unknown_app(capsys):
    with pytest.raises(SystemExit):
        verify_main(["not_an_app"])
    with pytest.raises(SystemExit):
        verify_main([])  # no apps and no --all
    with pytest.raises(SystemExit):
        verify_main(["harris", "--severity", "RV402"])  # missing =LEVEL


def test_cli_severity_override(capsys):
    rc = verify_main(["bilateral", "--size", "64", "--strict",
                      "--severity", "RV402=error"])
    assert rc == 1  # escalated notes now fail strict mode
