"""Mutation tests: corrupt a compiled plan, prove the verifier notices.

Each test takes a *clean* harris plan (one 6-stage tiled group), applies
one targeted corruption — the kind of bug a broken grouping, alignment,
tiling, storage or codegen pass would produce — and asserts the exact
diagnostic code fires.  Together they cover every family: legality
(RV001/002/003), bounds (RV101), storage (RV201/203), races (RV301/302)
and lint (RV401/403/405).
"""

from dataclasses import replace
from fractions import Fraction

import pytest

from repro.apps import harris
from repro.codegen.cgen import generate_c
from repro.compiler.align_scale import StageTransform
from repro.compiler.options import CompileOptions
from repro.compiler.plan import compile_plan
from repro.compiler.storage import SCRATCH, StorageDecision
from repro.compiler.tiling import Halo
from repro.lang import (
    Case, Condition, Float, Function, Int, Interval, Parameter, Variable,
)
from repro.verify import VerifyError, lint_generated_c, verify_or_raise
from repro.verify import verify_plan


@pytest.fixture()
def plan():
    """A fresh (mutable) harris plan per test."""
    app = harris.build_pipeline()
    values = {app.params["R"]: 61, app.params["C"]: 45}
    return compile_plan(app.outputs, values, CompileOptions())


def _stage(plan, name):
    return plan.stage_by_name(name)


def test_clean_plan_passes(plan):
    assert verify_plan(plan).ok


def test_reversed_stage_order_fires_rv001(plan):
    gp = plan.group_plans[0]
    assert len(gp.ordered_stages) > 1
    gp.ordered_stages.reverse()
    report = verify_plan(plan, checks=("legality",))
    assert "RV001" in report.codes(), report.render()
    assert not report.ok


def test_shrunken_halo_fires_rv002(plan):
    gp = plan.group_plans[0]
    ndim = gp.transforms.ndim
    zero = Halo((Fraction(0),) * ndim, (Fraction(0),) * ndim)
    for stage in gp.ordered_stages:
        gp.group.halos[stage] = zero
    report = verify_plan(plan, checks=("legality",))
    assert "RV002" in report.codes(), report.render()
    # the too-small evaluation regions also break read coverage
    storage = verify_plan(plan, checks=("storage",))
    assert "RV202" in storage.codes(), storage.render()


def test_corrupted_scale_fires_rv003(plan):
    gp = plan.group_plans[0]
    stage = _stage(plan, "Ix")  # a producer inside the group
    t = gp.transforms[stage]
    gp.transforms.transforms[stage] = replace(
        t, scales=tuple(s * 2 for s in t.scales))
    report = verify_plan(plan, checks=("legality",))
    assert "RV003" in report.codes(), report.render()


def test_missing_transform_fires_rv004(plan):
    gp = plan.group_plans[0]
    del gp.transforms.transforms[_stage(plan, "Iy")]
    report = verify_plan(plan, checks=("legality",))
    assert "RV004" in report.codes(), report.render()


def test_negated_scale_fires_rv301(plan):
    gp = plan.group_plans[0]
    stage = _stage(plan, "harris")  # the group's live-out
    t = gp.transforms[stage]
    gp.transforms.transforms[stage] = replace(
        t, scales=tuple(-s for s in t.scales))
    report = verify_plan(plan, checks=("races",))
    assert "RV301" in report.codes(), report.render()


def test_scratch_mapped_output_fires_rv203(plan):
    out = _stage(plan, "harris")
    plan.storage[out] = StorageDecision(SCRATCH, "mutated by test")
    report = verify_plan(plan, checks=("storage",))
    assert "RV203" in report.codes(), report.render()


def test_underallocated_scratch_fires_rv201(plan):
    report = verify_plan(
        plan, checks=("storage",),
        scratch_sizes=lambda stage, gp: (1,) * plan.ir[stage].ndim)
    assert "RV201" in report.codes(), report.render()


def test_stripped_atomic_fires_rv302(plan):
    source = generate_c(plan, instrument=True)
    assert "#pragma omp atomic" in source
    assert not lint_generated_c(source)
    mutated = source.replace("#pragma omp atomic", "/* atomic removed */")
    diags = lint_generated_c(mutated)
    assert diags and all(d.code == "RV302" for d in diags)


def test_verify_or_raise_on_mutated_plan(plan):
    plan.group_plans[0].ordered_stages.reverse()
    with pytest.raises(VerifyError) as exc:
        verify_or_raise(plan, checks=("legality",))
    assert "RV001" in str(exc.value)


# -- bounds (RV101): violations appear under a *different* env ------------

def test_oob_under_other_estimates_fires_rv101():
    R = Parameter(Int, "R")
    x = Variable("x")
    fixed = Function(varDom=([x], [Interval(0, 63)]), typ=Float,
                     name="fixed_src")
    fixed.defn = [Case(Condition(x, ">=", 0), x * 0.5)]
    reader = Function(varDom=([x], [Interval(0, R - 1)]), typ=Float,
                      name="reader")
    reader.defn = [Case(Condition(x, ">=", 0), fixed(x) + 1.0)]
    # in bounds at the compile-time estimate (inlining disabled so the
    # point-wise producer keeps its own, fixed-extent buffer)...
    plan = compile_plan([reader], {R: 64}, CompileOptions(inline=False))
    assert verify_plan(plan, checks=("bounds",)).ok
    # ...out of bounds at a larger size
    report = verify_plan(plan, checks=("bounds",), param_env={R: 128})
    assert "RV101" in report.codes(), report.render()
    [diag] = report.by_code("RV101")
    assert "R=128" in diag.message  # the violating estimates are named


# -- lint mutations: broken pipelines, not broken plans -------------------

def _lint_report(outputs, estimates):
    plan = compile_plan(outputs, estimates, CompileOptions())
    return verify_plan(plan, checks=("lint",))


def test_variable_shadowing_stage_fires_rv403():
    R = Parameter(Int, "R")
    x = Variable("clash")
    f = Function(varDom=([x], [Interval(0, R - 1)]), typ=Float,
                 name="clash")
    f.defn = [Case(Condition(x, ">=", 0), x * 1.0)]
    report = _lint_report([f], {R: 32})
    assert "RV403" in report.codes(), report.render()


def test_dead_case_fires_rv401():
    R = Parameter(Int, "R")
    x = Variable("x")
    f = Function(varDom=([x], [Interval(0, R - 1)]), typ=Float, name="f")
    f.defn = [Case(Condition(x, ">=", 0), x * 1.0),
              Case(Condition(x, "<", 0), x * 2.0)]  # never holds
    report = _lint_report([f], {R: 32})
    assert "RV401" in report.codes(), report.render()


def test_implicit_narrowing_fires_rv405():
    R = Parameter(Int, "R")
    x = Variable("x")
    f = Function(varDom=([x], [Interval(0, R - 1)]), typ=Int, name="f")
    f.defn = [Case(Condition(x, ">=", 0), x * 0.5)]  # float expr, int stage
    report = _lint_report([f], {R: 32})
    assert "RV405" in report.codes(), report.render()


def test_provably_integral_expr_passes_rv405():
    """The range analysis vouches for float-typed expressions that are
    provably integral and in-range: truncation cannot change them."""
    from repro.lang import Floor
    R = Parameter(Int, "R")
    x = Variable("x")
    f = Function(varDom=([x], [Interval(0, R - 1)]), typ=Int, name="f")
    f.defn = [Case(Condition(x, ">=", 0), Floor(x * 0.5))]
    report = _lint_report([f], {R: 32})
    assert "RV405" not in report.codes(), report.render()


def test_accumulator_float_expr_still_fires_rv405():
    """Reductions get no range-based pardon: their in-flight partials
    are not bounded by the final range."""
    from repro.lang import Accumulate, Accumulator, Floor, Sum
    R = Parameter(Int, "R")
    x = Variable("x")
    r = Variable("r")
    acc = Accumulator(redDom=([r], [Interval(0, R - 1)]),
                      varDom=([x], [Interval(0, 0)]), typ=Int, name="acc")
    acc.defn = Accumulate(acc(0 * r), Floor(r * 0.5), Sum)
    report = _lint_report([acc], {R: 32})
    assert "RV405" in report.codes(), report.render()
