"""Randomized property tests for concrete interval arithmetic.

Seeded ``random``/NumPy generators only (no external property-testing
dependency): each trial draws random intervals and factors — positive
AND negative — evaluates the interval operation, then exhaustively (or
densely) samples concrete points and asserts every concrete result lies
inside the computed bounds.
"""

import random
from fractions import Fraction

from repro.lang import Max, Min, Parameter, Variable
from repro.lang.types import Int
from repro.poly.interval import IntInterval, evaluate_expr

TRIALS = 200


def _interval(rnd: random.Random, span: int = 40) -> IntInterval:
    lo = rnd.randint(-100, 100)
    return IntInterval(lo, lo + rnd.randint(0, span))


def _nonzero(rnd: random.Random, bound: int) -> int:
    d = 0
    while d == 0:
        d = rnd.randint(-bound, bound)
    return d


def test_floordiv_sound_and_tight():
    rnd = random.Random(1234)
    for _ in range(TRIALS):
        ivl = _interval(rnd)
        d = _nonzero(rnd, 8)
        out = ivl.floordiv(d)
        quotients = [v // d for v in range(ivl.lo, ivl.hi + 1)]
        assert all(q in out for q in quotients), (ivl, d, out)
        # flooring division is monotone, so the hull is exact
        assert out.lo == min(quotients) and out.hi == max(quotients)


def test_scale_sound_for_rational_factors():
    rnd = random.Random(99)
    for _ in range(TRIALS):
        ivl = _interval(rnd)
        f = Fraction(rnd.randint(-8, 8), rnd.randint(1, 8))
        out = ivl.scale(f)
        for v in range(ivl.lo, ivl.hi + 1):
            exact = Fraction(v) * f
            assert out.lo <= exact <= out.hi, (ivl, f, out)


def test_scale_integer_hull_is_tight():
    rnd = random.Random(7)
    for _ in range(TRIALS):
        ivl = _interval(rnd)
        f = Fraction(rnd.randint(-8, 8), rnd.randint(1, 8))
        out = ivl.scale(f)
        exacts = [Fraction(v) * f for v in (ivl.lo, ivl.hi)]
        lo, hi = min(exacts), max(exacts)
        # integer hull: floor/ceil of the exact rational endpoints
        assert hi <= out.hi < hi + 1
        assert lo - 1 < out.lo <= lo


def test_evaluate_expr_affine_floordiv_mod():
    """Random small expression trees: every concrete evaluation lands in
    the interval ``evaluate_expr`` derives."""
    rnd = random.Random(2024)
    x, y = Variable("x"), Variable("y")
    P = Parameter(Int, "P")
    for _ in range(TRIALS):
        a, b = rnd.randint(-5, 5), rnd.randint(-5, 5)
        c = rnd.randint(-10, 10)
        d = _nonzero(rnd, 6)
        m = _nonzero(rnd, 9)
        p = rnd.randint(-20, 20)
        xr = IntInterval(rnd.randint(-20, 20), rnd.randint(21, 40))
        yr = IntInterval(rnd.randint(-20, 20), rnd.randint(21, 40))
        env = {x: xr, y: yr, P: p}

        base = x * a + y * b + c + P
        cases = [
            (base, lambda vx, vy: vx * a + vy * b + c + p),
            (base // d, lambda vx, vy: (vx * a + vy * b + c + p) // d),
            (base % m, lambda vx, vy: (vx * a + vy * b + c + p) % m),
            (Min(x * a, y * b) + Max(x, y),
             lambda vx, vy: min(vx * a, vy * b) + max(vx, vy)),
            (-(x * a) - y,
             lambda vx, vy: -(vx * a) - vy),
        ]
        samples = [(vx, vy)
                   for vx in (xr.lo, (xr.lo + xr.hi) // 2, xr.hi)
                   for vy in (yr.lo, (yr.lo + yr.hi) // 2, yr.hi)]
        samples += [(rnd.randint(xr.lo, xr.hi), rnd.randint(yr.lo, yr.hi))
                    for _ in range(5)]
        for expr, concrete in cases:
            out = evaluate_expr(expr, env)
            assert out is not None, expr
            for vx, vy in samples:
                got = concrete(vx, vy)
                assert got in out, (expr, vx, vy, got, out)


def test_evaluate_expr_rejects_zero_divisor_and_unbound():
    x = Variable("x")
    env = {x: IntInterval(0, 10)}
    assert evaluate_expr(x // 0, env) is None
    assert evaluate_expr(x % 0, env) is None
    assert evaluate_expr(Variable("unbound") + 1, env) is None


def test_evaluate_expr_negative_divisor_directed():
    x = Variable("x")
    env = {x: IntInterval(1, 7)}
    out = evaluate_expr(x // -2, env)
    assert (out.lo, out.hi) == (-4, -1)
    out = evaluate_expr(x % -3, env)
    assert (out.lo, out.hi) == (-2, 0)
