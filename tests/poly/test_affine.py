"""Unit and property tests for the affine expression layer."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lang import Cast, Exp, Float, Image, Int, Parameter, Variable
from repro.poly.affine import (
    AccessForm, AffExpr, NotAffineError, analyze_access, to_affine,
)

x = Variable("x")
y = Variable("y")
R = Parameter(Int, "R")


# -- AffExpr algebra ----------------------------------------------------------

def test_constant_and_symbol_constructors():
    c = AffExpr.constant(5)
    assert c.is_constant and c.const == 5
    s = AffExpr.symbol(x, 2)
    assert s.coefficient(x) == 2


def test_zero_coefficient_dropped():
    s = AffExpr.symbol(x, 0)
    assert s.is_constant


def test_add_merges_terms():
    e = AffExpr.symbol(x, 2) + AffExpr.symbol(x, 3) + AffExpr.constant(1)
    assert e.coefficient(x) == 5 and e.const == 1


def test_sub_cancels():
    e = AffExpr.symbol(x) - AffExpr.symbol(x)
    assert e.is_constant and e.const == 0


def test_scale_and_shift():
    e = AffExpr.symbol(x, 2).shift(3).scale(Fraction(1, 2))
    assert e.coefficient(x) == 1 and e.const == Fraction(3, 2)


def test_substitute_symbols():
    e = AffExpr.symbol(x, 2).shift(1)
    e2 = e.substitute({x: AffExpr.symbol(y).shift(5)})
    assert e2.coefficient(y) == 2 and e2.const == 11


def test_evaluate():
    e = AffExpr.symbol(x, 2) + AffExpr.symbol(R, -1) + AffExpr.constant(3)
    assert e.evaluate_int({x: 4, R: 5}) == 2 * 4 - 5 + 3


def test_evaluate_missing_symbol():
    with pytest.raises(KeyError):
        AffExpr.symbol(x).evaluate({})


def test_evaluate_int_rejects_fractional():
    e = AffExpr.symbol(x, Fraction(1, 2))
    with pytest.raises(ValueError):
        e.evaluate_int({x: 3})


def test_drop_symbol():
    e = AffExpr.symbol(x, 2) + AffExpr.symbol(y, 3)
    assert e.drop(x).coefficient(x) == 0
    assert e.drop(x).coefficient(y) == 3


@given(st.integers(-50, 50), st.integers(-50, 50),
       st.integers(-10, 10), st.integers(-10, 10))
def test_affexpr_evaluation_is_linear(a, b, vx, vy):
    e = AffExpr.symbol(x, a) + AffExpr.symbol(y, b)
    assert e.evaluate({x: vx, y: vy}) == a * vx + b * vy


@given(st.integers(-20, 20), st.integers(-20, 20), st.integers(-20, 20))
def test_affexpr_add_commutes(a, b, v):
    e1 = AffExpr.symbol(x, a) + AffExpr.constant(b)
    e2 = AffExpr.constant(b) + AffExpr.symbol(x, a)
    assert e1.evaluate({x: v}) == e2.evaluate({x: v})


@given(st.integers(-20, 20), st.integers(1, 20), st.integers(-20, 20))
def test_scale_then_unscale_roundtrip(a, s, v):
    e = AffExpr.symbol(x, a)
    back = e.scale(s).scale(Fraction(1, s))
    assert back.evaluate({x: v}) == e.evaluate({x: v})


# -- to_affine extraction -------------------------------------------------------

def test_to_affine_basic():
    e = to_affine(2 * x + y - 1)
    assert e.coefficient(x) == 2 and e.coefficient(y) == 1 and e.const == -1


def test_to_affine_with_parameters():
    e = to_affine(R - 1 + x)
    assert e.coefficient(R) == 1 and e.const == -1


def test_to_affine_division_by_constant():
    e = to_affine((x + 2) / 2)
    assert e.coefficient(x) == Fraction(1, 2) and e.const == 1


def test_to_affine_negation_and_cast():
    e = to_affine(-Cast(Float, x))
    assert e.coefficient(x) == -1


def test_to_affine_rejects_products():
    with pytest.raises(NotAffineError):
        to_affine(x * y)


def test_to_affine_rejects_floordiv():
    with pytest.raises(NotAffineError):
        to_affine(x // 2)


def test_to_affine_rejects_references():
    I = Image(Float, [R], name="I")
    with pytest.raises(NotAffineError):
        to_affine(I(x))


def test_to_affine_rejects_math_calls():
    with pytest.raises(NotAffineError):
        to_affine(Exp(x))


def test_to_affine_params_only_rejects_variables():
    with pytest.raises(NotAffineError):
        to_affine(x + 1, params_only=True)
    e = to_affine(R + 1, params_only=True)
    assert e.coefficient(R) == 1


# -- analyze_access --------------------------------------------------------------

def test_analyze_access_plain():
    form = analyze_access(x + 1)
    assert form is not None and form.is_plain_affine
    assert form.aff.const == 1


def test_analyze_access_sampled():
    form = analyze_access((x + 1) // 2)
    assert form is not None and form.divisor == 2


def test_analyze_access_downsample_pattern():
    form = analyze_access(2 * x + 1)
    assert form is not None and form.aff.coefficient(x) == 2


def test_analyze_access_data_dependent_is_none():
    I = Image(Float, [R], name="I")
    assert analyze_access(I(x)) is None


def test_analyze_access_nested_floordiv_is_none():
    assert analyze_access((x // 2) // 2) is None


def test_analyze_access_negative_divisor_is_none():
    assert analyze_access(x // -2) is None


def test_access_form_validates_divisor():
    with pytest.raises(ValueError):
        AccessForm(AffExpr.symbol(x), 0)
