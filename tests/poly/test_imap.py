"""Extra coverage for schedule maps."""

from fractions import Fraction

import pytest

from repro.lang.constructs import Variable
from repro.poly.imap import Schedule, ScheduleDim


def test_initial_schedule_identity():
    x, y = Variable("x"), Variable("y")
    s = Schedule.initial(3, [x, y])
    assert s.level == 3
    assert all(d.scale == 1 and d.offset == 0 for d in s.dims)


def test_scaled_schedule_apply():
    x = Variable("x")
    dim = ScheduleDim(x, Fraction(1, 2), Fraction(3))
    assert dim.apply(4) == Fraction(5)
    assert dim.apply(Fraction(1)) == Fraction(7, 2)


def test_relation_str_with_offsets():
    x = Variable("x")
    s = Schedule(1, (ScheduleDim(x, Fraction(2), Fraction(1)),))
    assert s.relation_str("g") == "g: (x) -> (1, 2*x + 1)"


def test_with_dim_replaces_only_target():
    x, y = Variable("x"), Variable("y")
    s = Schedule.initial(0, [x, y])
    s2 = s.with_dim(1, ScheduleDim(y, Fraction(4)))
    assert s2.dims[0].scale == 1
    assert s2.dims[1].scale == 4
    assert s.dims[1].scale == 1  # original untouched
