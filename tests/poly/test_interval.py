"""Unit and property tests for integer interval arithmetic."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lang import Int, Parameter, Variable
from repro.poly.affine import AccessForm, AffExpr
from repro.poly.interval import IntInterval, evaluate_access, evaluate_affine

x = Variable("x")
R = Parameter(Int, "R")

intervals = st.tuples(st.integers(-100, 100), st.integers(0, 50)).map(
    lambda t: IntInterval(t[0], t[0] + t[1]))


def test_empty_interval_rejected():
    with pytest.raises(ValueError):
        IntInterval(3, 2)


def test_size_and_contains():
    ivl = IntInterval(2, 5)
    assert ivl.size == 4
    assert 2 in ivl and 5 in ivl and 6 not in ivl
    assert ivl.contains(IntInterval(3, 4))
    assert not ivl.contains(IntInterval(3, 6))


def test_intersect_and_hull():
    a, b = IntInterval(0, 5), IntInterval(3, 9)
    assert a.intersect(b) == IntInterval(3, 5)
    assert a.hull(b) == IntInterval(0, 9)
    assert IntInterval(0, 1).intersect(IntInterval(5, 6)) is None


def test_expand_and_shift():
    assert IntInterval(2, 4).expand(1, 2) == IntInterval(1, 6)
    assert IntInterval(2, 4).shift(-2) == IntInterval(0, 2)


def test_scale_by_fraction_takes_integer_hull():
    assert IntInterval(1, 3).scale(Fraction(1, 2)) == IntInterval(0, 2)
    assert IntInterval(-3, -1).scale(Fraction(1, 2)) == IntInterval(-2, 0)


def test_scale_negative_flips():
    assert IntInterval(1, 3).scale(-2) == IntInterval(-6, -2)


def test_floordiv():
    assert IntInterval(-3, 5).floordiv(2) == IntInterval(-2, 2)
    with pytest.raises(ValueError):
        IntInterval(0, 1).floordiv(0)


def test_add_is_minkowski_sum():
    assert IntInterval(1, 2) + IntInterval(10, 20) == IntInterval(11, 22)


@given(intervals, intervals)
def test_hull_contains_both(a, b):
    h = a.hull(b)
    assert h.contains(a) and h.contains(b)


@given(intervals, intervals)
def test_intersection_sound(a, b):
    inter = a.intersect(b)
    if inter is None:
        assert not a.overlaps(b)
    else:
        for v in (inter.lo, inter.hi):
            assert v in a and v in b


@given(intervals, st.integers(1, 9))
def test_floordiv_covers_pointwise(ivl, d):
    out = ivl.floordiv(d)
    for v in range(ivl.lo, min(ivl.hi, ivl.lo + 20) + 1):
        assert v // d in out


# -- affine/access evaluation over intervals -----------------------------------

def test_evaluate_affine_with_mixed_env():
    aff = AffExpr.symbol(x, 2) + AffExpr.symbol(R, -1) + AffExpr.constant(1)
    out = evaluate_affine(aff, {x: IntInterval(0, 3), R: 10})
    assert out == IntInterval(-9, -3)


def test_evaluate_affine_negative_coefficient():
    aff = AffExpr.symbol(x, -1)
    assert evaluate_affine(aff, {x: IntInterval(2, 5)}) == IntInterval(-5, -2)


def test_evaluate_affine_missing_symbol_raises():
    with pytest.raises(KeyError):
        evaluate_affine(AffExpr.symbol(x), {})


def test_evaluate_access_with_divisor():
    form = AccessForm(AffExpr.symbol(x).shift(1), 2)
    out = evaluate_access(form, {x: IntInterval(0, 5)})
    assert out == IntInterval(0, 3)


@given(intervals, st.integers(-3, 3), st.integers(-10, 10), st.integers(1, 4))
def test_evaluate_access_covers_all_points(ivl, coeff, off, div):
    """Every concrete access index must be inside the propagated range."""
    form = AccessForm(AffExpr.symbol(x, coeff).shift(off), div)
    out = evaluate_access(form, {x: ivl})
    step = max(1, ivl.size // 10)
    for v in range(ivl.lo, ivl.hi + 1, step):
        assert (coeff * v + off) // div in out
