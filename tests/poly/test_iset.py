"""Unit tests for parametric boxes and condition splitting."""

import pytest

from repro.lang import Condition, Float, Image, Int, Interval, Parameter, Variable
from repro.lang.expr import TrueCond
from repro.poly.affine import AffExpr
from repro.poly.interval import IntInterval
from repro.poly.iset import ParametricBox, split_condition

x = Variable("x")
y = Variable("y")
R = Parameter(Int, "R")
C = Parameter(Int, "C")


def _box():
    return ParametricBox.from_intervals(
        [x, y], [Interval(0, R + 1, 1), Interval(0, C + 1, 1)])


def test_from_intervals_concretize():
    box = _box()
    conc = box.concretize({R: 10, C: 20})
    assert conc == (IntInterval(0, 11), IntInterval(0, 21))


def test_from_intervals_rejects_variable_bounds():
    with pytest.raises(ValueError):
        ParametricBox.from_intervals([x], [Interval(0, y, 1)])


def test_from_extents():
    box = ParametricBox.from_extents([x, y], [R + 2, C + 2])
    conc = box.concretize({R: 4, C: 6})
    assert conc == (IntInterval(0, 5), IntInterval(0, 7))


def test_size_estimate():
    box = _box()
    assert box.size_estimate({R: 10, C: 10}) == 12 * 12


def test_empty_concretization():
    box = ParametricBox.from_intervals([x], [Interval(5, R, 1)])
    assert box.concretize({R: 3}) is None
    assert box.size_estimate({R: 3}) == 0


def test_dim_index():
    box = _box()
    assert box.dim_index(y) == 1
    with pytest.raises(KeyError):
        box.dim_index(Variable("z"))


def test_tighten_with_extra_bounds():
    box = _box()
    tightened = box.tighten({x: ([AffExpr.constant(2)],
                                 [AffExpr.symbol(R, 1).shift(-1)])})
    conc = tightened.concretize({R: 10, C: 10})
    assert conc[0] == IntInterval(2, 9)
    assert conc[1] == IntInterval(0, 11)


def test_tighten_ignores_foreign_variables():
    box = _box()
    z = Variable("z")
    same = box.tighten({z: ([AffExpr.constant(5)], [])})
    assert same.concretize({R: 1, C: 1}) == box.concretize({R: 1, C: 1})


# -- split_condition ----------------------------------------------------------

def test_split_simple_bounds():
    cond = ((x >= 1) & (x <= R) & (y >= 1) & (y <= C))
    split = split_condition(cond)
    assert split.is_pure_bounds
    assert set(split.bounds) == {x, y}
    lowers, uppers = split.bounds[x]
    assert len(lowers) == 1 and len(uppers) == 1


def test_split_paper_style_condition():
    cond = (Condition(x, ">=", 2) & Condition(x, "<=", R - 1)
            & Condition(y, ">=", 2) & Condition(y, "<=", C - 1))
    split = split_condition(cond)
    assert split.is_pure_bounds
    box = ParametricBox.from_intervals(
        [x, y], [Interval(0, R + 1, 1), Interval(0, C + 1, 1)])
    conc = box.tighten(split.bounds).concretize({R: 10, C: 10})
    assert conc == (IntInterval(2, 9), IntInterval(2, 9))


def test_split_strict_comparisons():
    split = split_condition((x > 1) & (x < 5))
    box = ParametricBox.from_intervals([x], [Interval(0, 100, 1)])
    conc = box.tighten(split.bounds).concretize({})
    assert conc == (IntInterval(2, 4),)


def test_split_negated_coefficient():
    # -2x <= -4  =>  x >= 2
    split = split_condition(Condition(-2 * x, "<=", -4))
    box = ParametricBox.from_intervals([x], [Interval(0, 10, 1)])
    conc = box.tighten(split.bounds).concretize({})
    assert conc == (IntInterval(2, 10),)


def test_split_equality_pins_both_bounds():
    split = split_condition(Condition(x, "==", 3))
    box = ParametricBox.from_intervals([x], [Interval(0, 10, 1)])
    conc = box.tighten(split.bounds).concretize({})
    assert conc == (IntInterval(3, 3),)


def test_split_disjunction_is_residual():
    cond = (x >= 1) & ((x <= 3) | (x >= 7))
    split = split_condition(cond)
    assert not split.is_pure_bounds
    assert len(split.residual) == 1
    assert x in split.bounds


def test_split_multi_variable_comparison_residual():
    split = split_condition(Condition(x + y, "<=", 10))
    assert not split.is_pure_bounds


def test_split_data_dependent_residual():
    I = Image(Float, [R], name="I")
    split = split_condition(Condition(I(x), ">", 0.5))
    assert not split.is_pure_bounds


def test_split_true_cond_empty():
    split = split_condition(TrueCond())
    assert split.is_pure_bounds and not split.bounds


def test_split_inequality_residual():
    split = split_condition(Condition(x, "!=", 3))
    assert not split.is_pure_bounds
