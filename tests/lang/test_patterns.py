"""Table 1: every computation pattern of the paper, expressed and executed.

One test per row of Table 1 — point-wise, stencil, upsample, downsample,
histogram, time-iterated — each written in the DSL, compiled, executed
and checked against straightforward NumPy.
"""

import numpy as np
import pytest

from repro import compile_pipeline
from repro.lang import (
    Accumulate, Accumulator, Case, Cast, Condition, Float, Function, Image,
    Int, Interval, Parameter, Stencil, Sum, UChar, Variable,
)

RNG = np.random.default_rng(13)


def _run(outputs, values, inputs):
    compiled = compile_pipeline(outputs, values)
    return compiled(values, inputs)


def test_pointwise():
    """f(x, y) = g(x, y)"""
    R = Parameter(Int, "R")
    g = Image(Float, [R, R], name="g")
    x, y = Variable("x"), Variable("y")
    dom = Interval(0, R - 1, 1)
    f = Function(varDom=([x, y], [dom, dom]), typ=Float, name="f")
    f.defn = g(x, y)
    data = RNG.random((16, 16), dtype=np.float32)
    out = _run([f], {R: 16}, {g: data})["f"]
    np.testing.assert_array_equal(out, data)


def test_stencil():
    """f(x, y) = sum_{sx, sy in [-1, 1]} g(x + sx, y + sy)"""
    R = Parameter(Int, "R")
    g = Image(Float, [R, R], name="g")
    x, y = Variable("x"), Variable("y")
    dom = Interval(0, R - 1, 1)
    inner = (Condition(x, ">=", 1) & Condition(x, "<=", R - 2)
             & Condition(y, ">=", 1) & Condition(y, "<=", R - 2))
    f = Function(varDom=([x, y], [dom, dom]), typ=Float, name="f")
    f.defn = [Case(inner, Stencil(g(x, y), 1,
                                  [[1, 1, 1], [1, 1, 1], [1, 1, 1]]))]
    data = RNG.random((16, 16), dtype=np.float32)
    out = _run([f], {R: 16}, {g: data})["f"]
    expected = sum(data[1 + dx:15 + dx, 1 + dy:15 + dy]
                   for dx in (-1, 0, 1) for dy in (-1, 0, 1))
    np.testing.assert_allclose(out[1:15, 1:15], expected, rtol=1e-6)


def test_upsample():
    """f(x, y) = sum g((x + sx) / 2, (y + sy) / 2)"""
    R = Parameter(Int, "R")
    g = Image(Float, [R + 1, R + 1], name="g")
    x, y = Variable("x"), Variable("y")
    dom = Interval(1, 2 * R - 2, 1)
    f = Function(varDom=([x, y], [dom, dom]), typ=Float, name="f")
    f.defn = sum(g((x + sx) // 2, (y + sy) // 2)
                 for sx in (-1, 0, 1) for sy in (-1, 0, 1))
    data = RNG.random((9, 9), dtype=np.float32)
    out = _run([f], {R: 8}, {g: data})["f"]
    xs = np.arange(1, 15)
    expected = sum(data[np.ix_((xs + sx) // 2, (xs + sy) // 2)]
                   for sx in (-1, 0, 1) for sy in (-1, 0, 1))
    np.testing.assert_allclose(out, expected, rtol=1e-5)


def test_downsample():
    """f(x, y) = sum g(2x + sx, 2y + sy)"""
    R = Parameter(Int, "R")
    g = Image(Float, [2 * R + 2, 2 * R + 2], name="g")
    x, y = Variable("x"), Variable("y")
    dom = Interval(1, R - 1, 1)
    f = Function(varDom=([x, y], [dom, dom]), typ=Float, name="f")
    f.defn = sum(g(2 * x + sx, 2 * y + sy)
                 for sx in (-1, 0, 1) for sy in (-1, 0, 1))
    data = RNG.random((18, 18), dtype=np.float32)
    out = _run([f], {R: 8}, {g: data})["f"]
    xs = np.arange(1, 8)
    expected = sum(data[np.ix_(2 * xs + sx, 2 * xs + sy)]
                   for sx in (-1, 0, 1) for sy in (-1, 0, 1))
    np.testing.assert_allclose(out, expected, rtol=1e-5)


def test_histogram():
    """f(g(x)) += 1"""
    R = Parameter(Int, "R")
    g = Image(UChar, [R], name="g")
    x, b = Variable("x"), Variable("b")
    hist = Accumulator(redDom=([x], [Interval(0, R - 1, 1)]),
                       varDom=([b], [Interval(0, 255, 1)]),
                       typ=Int, name="hist")
    hist.defn = Accumulate(hist(Cast(Int, g(x))), 1, Sum)
    data = RNG.integers(0, 256, 999, dtype=np.uint8)
    out = _run([hist], {R: 999}, {g: data})["hist"]
    np.testing.assert_array_equal(out, np.bincount(data, minlength=256))


def test_time_iterated():
    """f(t, x, y) = g(f(t - 1, x, y))"""
    R = Parameter(Int, "R")
    I = Image(Float, [R, R], name="I")
    t, x, y = Variable("t"), Variable("x"), Variable("y")
    T = 3
    f = Function(varDom=([t, x, y], [Interval(0, T, 1),
                                     Interval(0, R - 1, 1),
                                     Interval(0, R - 1, 1)]),
                 typ=Float, name="f")
    f.defn = [
        Case(Condition(t, "==", 0), I(x, y)),
        Case(Condition(t, ">=", 1), f(t - 1, x, y) * 0.5 + 0.25),
    ]
    data = RNG.random((8, 8), dtype=np.float32)
    out = _run([f], {R: 8}, {I: data})["f"]
    expected = data.copy()
    for _ in range(T):
        expected = expected * 0.5 + 0.25
    np.testing.assert_allclose(out[T], expected, rtol=1e-6)


def test_summed_area_table_pattern():
    """The paper mentions summed-area tables as expressible: f references
    its own earlier values along both dimensions."""
    R = Parameter(Int, "R")
    I = Image(Float, [R, R], name="I")
    x, y = Variable("x"), Variable("y")
    dom = Interval(0, R - 1, 1)
    sat = Function(varDom=([x, y], [dom, dom]), typ=Float, name="sat")
    sat.defn = [
        Case(Condition(x, "==", 0) & Condition(y, "==", 0), I(x, y)),
        Case(Condition(x, "==", 0) & Condition(y, ">=", 1),
             I(x, y) + sat(x, y - 1)),
        Case(Condition(x, ">=", 1) & Condition(y, "==", 0),
             I(x, y) + sat(x - 1, y)),
        Case(Condition(x, ">=", 1) & Condition(y, ">=", 1),
             I(x, y) + sat(x - 1, y) + sat(x, y - 1) - sat(x - 1, y - 1)),
    ]
    data = RNG.random((10, 10)).astype(np.float32)
    out = _run([sat], {R: 10}, {I: data})["sat"]
    np.testing.assert_allclose(
        out, data.astype(np.float64).cumsum(0).cumsum(1), rtol=1e-4)
