"""Unit tests for Parameter, Variable, Interval, Case, Function, Image,
Accumulator and the Stencil helper."""

import pytest

from repro.lang import (
    Accumulate, Accumulator, Case, Condition, Float, Function, Image, Int,
    Interval, Literal, Parameter, Reduction, Stencil, Sum, UChar, Variable,
)
from repro.lang.expr import BinOp, Reference, TrueCond, references


# -- Parameter / Variable ---------------------------------------------------

def test_parameter_has_name_and_dtype():
    R = Parameter(Int, "R")
    assert R.name == "R" and R.dtype is Int


def test_parameter_autoname_unique():
    a, b = Parameter(Int), Parameter(Int)
    assert a.name != b.name


def test_parameter_rejects_non_dtype():
    with pytest.raises(TypeError):
        Parameter("Int")  # type: ignore[arg-type]


def test_variable_autoname_unique():
    a, b = Variable(), Variable()
    assert a.name != b.name


def test_parameters_usable_in_expressions():
    R = Parameter(Int, "R")
    e = R + 2
    assert isinstance(e, BinOp)


# -- Interval ---------------------------------------------------------------

def test_interval_wraps_bounds():
    R = Parameter(Int, "R")
    ivl = Interval(0, R + 1, 1)
    assert isinstance(ivl.lower, Literal)
    assert ivl.step == 1


def test_interval_rejects_zero_step():
    with pytest.raises(ValueError):
        Interval(0, 10, 0)


# -- Case ---------------------------------------------------------------------

def test_case_requires_condition():
    x = Variable("x")
    with pytest.raises(TypeError):
        Case(x, x + 1)  # type: ignore[arg-type]
    c = Case(x >= 0, x + 1)
    assert isinstance(c.condition, Condition)


# -- Function -----------------------------------------------------------------

def _simple_domain():
    x, y = Variable("x"), Variable("y")
    row = Interval(0, 63, 1)
    col = Interval(0, 63, 1)
    return (x, y), (row, col)


def test_function_definition_single_expression():
    (x, y), dom = _simple_domain()
    f = Function(varDom=([x, y], list(dom)), typ=Float, name="f")
    f.defn = x + y
    assert len(f.defn) == 1
    assert isinstance(f.defn[0].condition, TrueCond)


def test_function_definition_cases():
    (x, y), dom = _simple_domain()
    f = Function(varDom=([x, y], list(dom)), typ=Float, name="f")
    f.defn = [Case(x >= 1, 1.0), Case(x < 1, 0.0)]
    assert len(f.defn) == 2


def test_function_redefinition_rejected():
    (x, y), dom = _simple_domain()
    f = Function(varDom=([x, y], list(dom)), typ=Float)
    f.defn = x
    with pytest.raises(ValueError):
        f.defn = y


def test_function_undefined_access_raises():
    (x, y), dom = _simple_domain()
    f = Function(varDom=([x, y], list(dom)), typ=Float)
    with pytest.raises(ValueError):
        _ = f.defn


def test_function_domain_validation():
    x = Variable("x")
    with pytest.raises(ValueError):
        Function(varDom=([x], []), typ=Float)
    with pytest.raises(TypeError):
        Function(varDom=([x], ["nope"]), typ=Float)
    with pytest.raises(ValueError):
        Function(varDom=([x, x], [Interval(0, 1), Interval(0, 1)]), typ=Float)


def test_function_call_produces_reference():
    (x, y), dom = _simple_domain()
    f = Function(varDom=([x, y], list(dom)), typ=Float, name="f")
    ref = f(x, y + 1)
    assert isinstance(ref, Reference) and ref.function is f


def test_function_call_arity():
    (x, y), dom = _simple_domain()
    f = Function(varDom=([x, y], list(dom)), typ=Float)
    with pytest.raises(TypeError):
        f(x)


# -- Image --------------------------------------------------------------------

def test_image_extents_and_access():
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    I = Image(Float, [R + 2, C + 2], name="I")
    assert I.ndim == 2
    x, y = Variable("x"), Variable("y")
    assert isinstance(I(x, y), Reference)


def test_image_requires_dimensions():
    with pytest.raises(ValueError):
        Image(Float, [])


# -- Accumulator ---------------------------------------------------------------

def _histogram():
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    I = Image(UChar, [R, C], name="I")
    x, y = Variable("x"), Variable("y")
    row, col = Interval(0, R - 1, 1), Interval(0, C - 1, 1)
    b = Variable("b")
    bins = Interval(0, 255, 1)
    hist = Accumulator(redDom=([x, y], [row, col]), varDom=([b], [bins]),
                       typ=Int, name="hist")
    return hist, I, x, y


def test_accumulator_histogram_definition():
    hist, I, x, y = _histogram()
    hist.defn = Accumulate(hist(I(x, y)), 1, Sum)
    assert hist.defn.op == Reduction.Sum


def test_accumulator_target_must_be_self():
    hist, I, x, y = _histogram()
    other, _, _, _ = _histogram()
    with pytest.raises(ValueError):
        hist.defn = Accumulate(other(I(x, y)), 1, Sum)


def test_accumulator_rejects_expression_body():
    hist, I, x, y = _histogram()
    with pytest.raises(TypeError):
        hist.defn = I(x, y)  # type: ignore[assignment]


def test_accumulator_domains_must_be_disjoint():
    x, y = Variable("x"), Variable("y")
    ivl = Interval(0, 7, 1)
    with pytest.raises(ValueError):
        Accumulator(redDom=([x, y], [ivl, ivl]), varDom=([x], [ivl]), typ=Int)


# -- Stencil -------------------------------------------------------------------

def test_stencil_expands_weighted_sum():
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    I = Image(Float, [R, C], name="I")
    x, y = Variable("x"), Variable("y")
    e = Stencil(I(x, y), 1.0 / 12,
                [[-1, 0, 1],
                 [-2, 0, 2],
                 [-1, 0, 1]])
    refs = list(references(e))
    # zero weights skipped: 6 non-zero taps
    assert len(refs) == 6


def test_stencil_box_filter_unit_factor():
    R = Parameter(Int, "R")
    I = Image(Float, [R, R], name="I")
    x, y = Variable("x"), Variable("y")
    e = Stencil(I(x, y), 1, [[1, 1, 1], [1, 1, 1], [1, 1, 1]])
    assert len(list(references(e))) == 9


def test_stencil_1d():
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    x = Variable("x")
    e = Stencil(I(x), 0.25, [1, 2, 1])
    assert len(list(references(e))) == 3


def test_stencil_dimension_mismatch():
    R = Parameter(Int, "R")
    I = Image(Float, [R, R], name="I")
    x, y = Variable("x"), Variable("y")
    with pytest.raises(ValueError):
        Stencil(I(x, y), 1, [1, 2, 1])


def test_stencil_custom_origin():
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    x = Variable("x")
    # origin at leftmost tap: accesses x, x+1, x+2
    e = Stencil(I(x), 1, [1, 1, 1], origin=[0])
    refs = list(references(e))
    assert len(refs) == 3


def test_stencil_all_zero_weights():
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    x = Variable("x")
    e = Stencil(I(x), 1, [0, 0, 0])
    assert isinstance(e, Literal) and e.value == 0
