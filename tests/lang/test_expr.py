"""Unit tests for the expression AST."""

import pytest

from repro.lang import (
    Case, Cast, Condition, Exp, Float, Function, Image, Int, Interval,
    Literal, Min, Parameter, Select, Variable,
)
from repro.lang.expr import (
    BinOp, CondAnd, CondNot, CondOr, Reference, TrueCond, UnOp,
    condition_references, references, walk, wrap,
)


def test_wrap_numbers():
    lit = wrap(3)
    assert isinstance(lit, Literal) and lit.value == 3
    lit = wrap(2.5)
    assert isinstance(lit, Literal) and lit.value == 2.5


def test_wrap_passthrough():
    x = Variable("x")
    assert wrap(x) is x


def test_wrap_rejects_bool_and_junk():
    with pytest.raises(TypeError):
        wrap(True)
    with pytest.raises(TypeError):
        wrap("hello")


def test_arithmetic_builds_binops():
    x, y = Variable("x"), Variable("y")
    e = 2 * x + y - 1
    assert isinstance(e, BinOp) and e.op == "-"
    assert isinstance(e.left, BinOp) and e.left.op == "+"


def test_reflected_operators():
    x = Variable("x")
    e = 1 - x
    assert isinstance(e, BinOp)
    assert isinstance(e.left, Literal) and e.left.value == 1


def test_floordiv_and_mod():
    x = Variable("x")
    assert (x // 2).op == "//"
    assert (x % 3).op == "%"


def test_negation():
    x = Variable("x")
    e = -x
    assert isinstance(e, UnOp) and e.operand is x


def test_unsupported_unary_op_rejected():
    with pytest.raises(ValueError):
        UnOp("~", Variable("x"))


def test_unsupported_binary_op_rejected():
    with pytest.raises(ValueError):
        BinOp("**", Literal(1), Literal(2))


def test_comparisons_build_conditions():
    x = Variable("x")
    c = x >= 1
    assert isinstance(c, Condition) and c.op == ">="


def test_condition_conjunction_disjunction():
    x = Variable("x")
    c = (x >= 1) & (x <= 10)
    assert isinstance(c, CondAnd)
    d = (x < 0) | (x > 5)
    assert isinstance(d, CondOr)
    n = ~(x < 0)
    assert isinstance(n, CondNot)


def test_condition_mixing_with_non_condition_raises():
    x = Variable("x")
    with pytest.raises(TypeError):
        (x >= 1) & x  # type: ignore[operator]


def test_conjuncts_flattening():
    x = Variable("x")
    c = (x >= 1) & (x <= 10) & (x != 5 if False else (x >= 0))
    terms = list(c.conjuncts())
    assert len(terms) == 3


def test_reference_via_call():
    x, y = Variable("x"), Variable("y")
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    I = Image(Float, [R, C], name="I")
    ref = I(x, y)
    assert isinstance(ref, Reference)
    assert ref.function is I
    assert len(ref.args) == 2


def test_reference_arity_checked():
    R = Parameter(Int, "R")
    I = Image(Float, [R, R], name="I")
    with pytest.raises(TypeError):
        I(Variable("x"))


def test_select_requires_condition():
    x = Variable("x")
    with pytest.raises(TypeError):
        Select(x, 1, 2)  # type: ignore[arg-type]
    sel = Select(x > 0, x, -x)
    assert sel.true_expr is x


def test_cast_requires_dtype():
    with pytest.raises(TypeError):
        Cast("float", Literal(1))  # type: ignore[arg-type]
    c = Cast(Float, 3)
    assert c.dtype is Float


def test_math_call_names_validated():
    from repro.lang.expr import Call
    with pytest.raises(ValueError):
        Call("frobnicate", [Literal(1)])
    assert Exp(1.0).name == "exp"
    assert Min(1, 2).name == "min"


def test_walk_visits_all_nodes():
    x, y = Variable("x"), Variable("y")
    e = 2 * x + y
    kinds = [type(n).__name__ for n in walk(e)]
    assert "BinOp" in kinds and "Literal" in kinds and "Variable" in kinds


def test_references_traversal():
    x, y = Variable("x"), Variable("y")
    R = Parameter(Int, "R")
    I = Image(Float, [R, R], name="I")
    e = I(x, y) * 2 + I(x + 1, y)
    refs = list(references(e))
    assert len(refs) == 2
    assert all(r.function is I for r in refs)


def test_nested_reference_in_args_found():
    x = Variable("x")
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    lut = Image(Float, [R], name="lut")
    e = lut(Cast(Int, I(x)))
    refs = list(references(e))
    assert {r.function for r in refs} == {I, lut}


def test_condition_references():
    x = Variable("x")
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    c = Condition(I(x), ">", 0.5)
    refs = list(condition_references(c))
    assert len(refs) == 1 and refs[0].function is I


def test_substitute_replaces_variables():
    x, y = Variable("x"), Variable("y")
    e = 2 * x + 1
    e2 = e.substitute({x: y})
    names = {n.name for n in walk(e2) if isinstance(n, Variable)}
    assert names == {"y"}


def test_substitute_in_select_and_condition():
    x, y = Variable("x"), Variable("y")
    sel = Select(x > 0, x, 0)
    sel2 = sel.substitute({x: y})
    assert sel2.true_expr is y
    assert sel2.condition.lhs is y


def test_expr_hashable_as_dict_key():
    x = Variable("x")
    e = x + 1
    d = {e: "value"}
    assert d[e] == "value"


def test_true_cond_repr_and_conjuncts():
    t = TrueCond()
    assert list(t.conjuncts()) == [t]
    assert repr(t) == "True"
