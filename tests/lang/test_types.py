"""Tests for the DSL scalar type system."""

import numpy as np
import pytest

from repro.lang.types import (
    ALL_TYPES, Double, Float, Int, Short, UChar, dtype_by_name, promote,
)


def test_all_types_have_consistent_fields():
    for t in ALL_TYPES:
        assert t.np_dtype.itemsize >= 1
        assert t.c_name
        assert t.is_float == np.issubdtype(t.np_dtype, np.floating)


def test_dtype_by_name_roundtrip():
    for t in ALL_TYPES:
        assert dtype_by_name(t.name) is t


def test_dtype_by_name_unknown():
    with pytest.raises(ValueError):
        dtype_by_name("Quaternion")


def test_promotion_int_float():
    assert promote(Int, Float).is_float
    assert promote(UChar, Short) is Short
    assert promote(Float, Double) is Double


def test_promotion_symmetric():
    for a in ALL_TYPES:
        for b in ALL_TYPES:
            assert promote(a, b) is promote(b, a)


def test_repr_is_dsl_name():
    assert repr(Float) == "Float"
    assert repr(UChar) == "UChar"
