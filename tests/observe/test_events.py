"""EventLog ring semantics and Timeline stage decomposition."""

import json
import threading

import pytest

from repro.observe import EventLog, Timeline


# -- ring bounds -------------------------------------------------------------

def test_ring_keeps_most_recent_and_counts_evictions():
    log = EventLog(capacity=3)
    for i in range(5):
        log.append("tick", i)
    assert len(log) == 3
    assert log.appended == 5
    assert log.evicted == 2
    assert [e.request_id for e in log.events()] == [2, 3, 4]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        EventLog(capacity=0)


def test_event_filters_and_fields():
    log = EventLog()
    log.append("submitted", 1)
    log.append("submitted", 2)
    log.append("dropped", 1, reason="queue_wait")
    assert [e.kind for e in log.events(request_id=1)] == \
        ["submitted", "dropped"]
    assert [e.request_id for e in log.events(kind="submitted")] == [1, 2]
    dropped = log.events(kind="dropped")[0]
    assert dropped.fields == {"reason": "queue_wait"}
    assert dropped.to_dict()["reason"] == "queue_wait"
    assert "dropped" in repr(dropped)


def test_concurrent_appends_never_lose_counts():
    log = EventLog(capacity=64)
    n_threads, per_thread = 4, 500

    def writer(k):
        for i in range(per_thread):
            log.append("tick", k * per_thread + i)

    threads = [threading.Thread(target=writer, args=(k,))
               for k in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert log.appended == n_threads * per_thread
    assert len(log) == 64
    assert log.evicted == n_threads * per_thread - 64


# -- JSONL sink / export -----------------------------------------------------

def test_sink_streams_every_event_beyond_ring_capacity(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(capacity=2, sink=path)
    for i in range(5):
        log.append("tick", i, step=i * 10)
    log.close()
    log.close()  # idempotent
    lines = [json.loads(line) for line in
             path.read_text().splitlines()]
    assert len(lines) == 5  # the sink got them all; the ring kept 2
    assert [rec["request_id"] for rec in lines] == list(range(5))
    assert lines[3]["step"] == 30
    assert all("t_rel" in rec and "wall" in rec for rec in lines)
    # relative timestamps are non-decreasing
    rels = [rec["t_rel"] for rec in lines]
    assert rels == sorted(rels)


def test_write_jsonl_dumps_buffered_ring(tmp_path):
    log = EventLog(capacity=3)
    for i in range(5):
        log.append("tick", i)
    out = log.write_jsonl(tmp_path / "ring.jsonl")
    lines = [json.loads(line) for line in out.read_text().splitlines()]
    assert [rec["request_id"] for rec in lines] == [2, 3, 4]
    empty = EventLog().write_jsonl(tmp_path / "empty.jsonl")
    assert empty.read_text() == ""


# -- timelines ---------------------------------------------------------------

def test_timeline_marks_mirror_into_log_with_same_ts():
    log = EventLog()
    tl = Timeline(7, log)
    tl.mark("submitted")
    tl.mark("dequeued")
    own = tl.events()
    mirrored = log.events(request_id=7)
    assert [e.kind for e in own] == [e.kind for e in mirrored]
    assert [e.ts for e in own] == [e.ts for e in mirrored]


def test_timeline_stage_durations_sum_exactly_to_total():
    tl = Timeline(0)
    for kind in ("submitted", "dequeued", "dispatched", "completed"):
        tl.mark(kind)
    d = tl.durations()
    assert set(d) == {"queue_wait", "batch_wait", "execute", "total"}
    assert all(v >= 0 for v in d.values())
    # exact, not approximate: stages are differences of shared stamps
    assert d["queue_wait"] + d["batch_wait"] + d["execute"] == d["total"]


def test_timeline_durations_partial_and_dropped():
    tl = Timeline(1)
    tl.mark("submitted")
    assert tl.durations() == {}
    tl.mark("dequeued")
    assert set(tl.durations()) == {"queue_wait"}
    tl.mark("dropped", reason="queue_wait")
    d = tl.durations()
    assert "total" in d and "execute" not in d  # never dispatched


def test_timeline_retry_dispatch_stays_inside_execute():
    tl = Timeline(2)
    tl.mark("submitted")
    tl.mark("dequeued")
    tl.mark("dispatched", backend="native")
    tl.mark("dispatched", backend="interpreter", retry=True)
    tl.mark("completed", backend="interpreter")
    d = tl.durations()
    # first dispatch anchors execute, so the retry is inside it
    assert tl.ts("dispatched") == tl.events()[2].ts
    assert d["queue_wait"] + d["batch_wait"] + d["execute"] == d["total"]
    assert tl.last("dispatched").fields["backend"] == "interpreter"


def test_timeline_render_and_to_dict():
    tl = Timeline(3, sampled=True)
    tl.mark("submitted")
    tl.mark("dequeued")
    tl.mark("dispatched", backend="native")
    tl.mark("completed", backend="native")
    text = tl.render()
    assert "request 3 (sampled):" in text
    assert "stages:" in text
    doc = json.loads(json.dumps(tl.to_dict()))
    assert doc["request_id"] == 3
    assert doc["sampled"] is True
    assert [e["kind"] for e in doc["events"]] == \
        ["submitted", "dequeued", "dispatched", "completed"]
    assert "total" in doc["durations"]
    assert Timeline(9).render() == "request 9: <no events>"
