"""Histogram + Prometheus exposition tests: observe/merge/round-trip,
registry integration, golden renders, validator negatives, and a
concurrent-writer stress run."""

import json
import math
import threading

import pytest

from repro.observe import Histogram, MetricsRegistry, default_latency_buckets
from repro.observe.export import (
    merge_snapshots, render_exposition, sanitize_metric_name,
    validate_exposition_text,
)


# -- bucket construction -----------------------------------------------------

def test_default_buckets_are_log_spaced_and_cover_range():
    buckets = default_latency_buckets()
    assert buckets[0] == pytest.approx(1e-4)
    assert buckets[-1] >= 60.0
    ratios = [b / a for a, b in zip(buckets, buckets[1:])]
    assert all(r == pytest.approx(2.0) for r in ratios)


def test_bad_buckets_rejected():
    with pytest.raises(ValueError):
        Histogram(buckets=[1.0, 1.0, 2.0])  # not strictly ascending
    with pytest.raises(ValueError):
        Histogram(buckets=[])
    with pytest.raises(ValueError):
        default_latency_buckets(lo=0.0)
    with pytest.raises(ValueError):
        default_latency_buckets(factor=1.0)


# -- observe / summarize -----------------------------------------------------

def test_observe_counts_sum_min_max():
    h = Histogram(buckets=[1.0, 2.0, 4.0])
    for v in (0.5, 1.5, 1.5, 3.0, 100.0):
        h.observe(v)
    assert h.count == 5
    assert h.sum == pytest.approx(106.5)
    pairs = h.bucket_counts()
    assert pairs == [(1.0, 1), (2.0, 3), (4.0, 4), (math.inf, 5)]
    s = h.summary()
    assert s["min"] == pytest.approx(0.5)
    assert s["max"] == pytest.approx(100.0)
    assert s["mean"] == pytest.approx(106.5 / 5)


def test_observe_on_bucket_boundary_lands_in_that_bucket():
    # bisect_left: a value exactly equal to a bound counts as <= bound,
    # matching Prometheus le semantics
    h = Histogram(buckets=[1.0, 2.0])
    h.observe(1.0)
    assert h.bucket_counts()[0] == (1.0, 1)


def test_percentile_interpolates_and_overflow_uses_max():
    h = Histogram(buckets=[10.0, 20.0])
    for _ in range(100):
        h.observe(15.0)
    # all mass in (10, 20]; p50 interpolates inside it
    assert 10.0 < h.percentile(50) <= 20.0
    h2 = Histogram(buckets=[1.0])
    h2.observe(500.0)
    assert h2.percentile(99) == pytest.approx(500.0)  # overflow → max seen
    assert Histogram().percentile(50) == 0.0  # empty


def test_empty_summary_is_all_zero():
    s = Histogram().summary()
    assert s == {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                 "max": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}


# -- merge / serialization ---------------------------------------------------

def test_merge_is_bucket_exact():
    a = Histogram(buckets=[1.0, 2.0, 4.0])
    b = Histogram(buckets=[1.0, 2.0, 4.0])
    both = Histogram(buckets=[1.0, 2.0, 4.0])
    for v in (0.5, 1.5, 3.0):
        a.observe(v)
        both.observe(v)
    for v in (0.1, 8.0):
        b.observe(v)
        both.observe(v)
    a.merge(b)
    assert a.bucket_counts() == both.bucket_counts()
    assert a.sum == pytest.approx(both.sum)
    assert a.summary() == both.summary()


def test_merge_rejects_different_buckets():
    with pytest.raises(ValueError):
        Histogram(buckets=[1.0]).merge(Histogram(buckets=[2.0]))


def test_to_dict_round_trips_through_json():
    h = Histogram(buckets=[0.01, 0.1, 1.0])
    for v in (0.005, 0.05, 0.5, 5.0):
        h.observe(v)
    restored = Histogram.from_dict(json.loads(json.dumps(h.to_dict())))
    assert restored.bucket_counts() == h.bucket_counts()
    assert restored.sum == pytest.approx(h.sum)
    assert restored.summary() == h.summary()
    # empty histograms round-trip too (min/max are None in the dict)
    empty = Histogram.from_dict(json.loads(json.dumps(Histogram().to_dict())))
    assert empty.count == 0
    empty.observe(1.0)
    assert empty.summary()["min"] == pytest.approx(1.0)


def test_from_dict_rejects_mismatched_counts():
    data = Histogram(buckets=[1.0, 2.0]).to_dict()
    data["counts"] = [0, 0]  # needs len(buckets) + 1
    with pytest.raises(ValueError):
        Histogram.from_dict(data)


# -- registry integration ----------------------------------------------------

def test_registry_histogram_is_shared_and_snapshotted():
    m = MetricsRegistry()
    h = m.histogram("lat", buckets=[1.0, 2.0])
    assert m.histogram("lat") is h
    m.observe("lat", 1.5)
    assert h.count == 1
    snap = m.as_dict()
    assert "histograms" in snap
    assert snap["histograms"]["lat"]["count"] == 1


def test_registry_without_histograms_keeps_legacy_shape():
    m = MetricsRegistry()
    m.count("frames")
    assert set(m.as_dict()) == {"counters", "gauges"}


def test_registry_merge_folds_histograms():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.observe("lat", 0.5, buckets=[1.0, 2.0])
    b.observe("lat", 1.5, buckets=[1.0, 2.0])
    b.count("frames", 3)
    a.merge(b)
    assert a.histogram("lat").count == 2
    assert a.counter("frames") == 3
    a.clear()
    assert a.as_dict() == {"counters": {}, "gauges": {}}


# -- exposition rendering (golden) -------------------------------------------

def test_expose_text_golden():
    m = MetricsRegistry()
    m.count("frames", 3)
    m.gauge("depth", 2.0)
    h = m.histogram("lat_seconds", buckets=[0.1, 1.0])
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    text = m.expose_text(prefix="repro_")
    assert text == (
        "# TYPE repro_frames_total counter\n"
        "repro_frames_total 3\n"
        "# TYPE repro_depth gauge\n"
        "repro_depth 2\n"
        "# TYPE repro_lat_seconds histogram\n"
        'repro_lat_seconds_bucket{le="0.1"} 1\n'
        'repro_lat_seconds_bucket{le="1"} 2\n'
        'repro_lat_seconds_bucket{le="+Inf"} 3\n'
        "repro_lat_seconds_sum 5.55\n"
        "repro_lat_seconds_count 3\n"
    )
    assert validate_exposition_text(text) == []


def test_counter_total_suffix_not_doubled():
    m = MetricsRegistry()
    m.count("frames_total", 1)
    text = m.expose_text()
    assert "frames_total_total" not in text
    assert "frames_total 1" in text


def test_sanitize_metric_name():
    assert sanitize_metric_name("serve.harris-p99") == "serve_harris_p99"
    assert sanitize_metric_name("0bad") == "_0bad"


def test_merge_snapshots_cross_process():
    def shard(values):
        m = MetricsRegistry()
        for v in values:
            m.observe("lat", v, buckets=[1.0, 2.0])
            m.count("frames")
        return m.as_dict()

    merged = merge_snapshots([shard([0.5, 1.5]), shard([3.0])])
    assert merged["counters"]["frames"] == 3
    text = render_exposition(merged)
    assert 'lat_bucket{le="+Inf"} 3' in text
    assert validate_exposition_text(text) == []


# -- validator negatives -----------------------------------------------------

def test_validator_rejects_decreasing_buckets():
    bad = (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 5\n'
        'h_bucket{le="+Inf"} 3\n'
        "h_sum 1\n"
        "h_count 3\n"
    )
    problems = validate_exposition_text(bad)
    assert any("decrease" in p for p in problems)


def test_validator_rejects_missing_inf_bucket_and_samples():
    bad = (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 5\n'
    )
    problems = validate_exposition_text(bad)
    assert any("+Inf" in p for p in problems)
    assert any("_sum" in p for p in problems)
    assert any("_count" in p for p in problems)


def test_validator_rejects_inf_count_mismatch_and_garbage():
    bad = (
        'h_bucket{le="+Inf"} 4\n'
        "h_sum 1\n"
        "h_count 5\n"
        "not a sample line !!!\n"
    )
    problems = validate_exposition_text(bad)
    assert any("_count" in p for p in problems)
    assert any("unparseable" in p for p in problems)
    assert validate_exposition_text("") == ["no samples found"]


# -- concurrency -------------------------------------------------------------

def test_concurrent_writers_and_renders():
    m = MetricsRegistry()
    h = m.histogram("lat", buckets=list(default_latency_buckets()))
    n_threads, per_thread = 4, 1000
    renders: list[str] = []
    stop = threading.Event()

    def writer(k):
        for i in range(per_thread):
            h.observe((k + 1) * 1e-4 * (i % 7 + 1))
            m.count("frames")

    def reader():
        while not stop.is_set():
            renders.append(m.expose_text())

    threads = [threading.Thread(target=writer, args=(k,))
               for k in range(n_threads)]
    r = threading.Thread(target=reader)
    r.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stop.set()
    r.join()

    assert h.count == n_threads * per_thread
    assert m.counter("frames") == n_threads * per_thread
    final = m.expose_text()
    assert validate_exposition_text(final) == []
    # every mid-flight render must have been internally consistent too
    for text in renders:
        assert validate_exposition_text(text) == []
