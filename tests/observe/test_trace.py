"""Unit tests for the repro.observe tracer, metrics and decision log."""

import json
import threading

import pytest

from repro.observe import (
    DecisionLog, MergeDecision, MetricsRegistry, Tracer, get_tracer,
    set_tracer, tracing, validate_chrome_trace,
)
from repro.observe.trace import _NULL_SPAN


# -- spans -------------------------------------------------------------------

def test_disabled_tracer_returns_null_span():
    tracer = Tracer(enabled=False)
    span = tracer.span("anything", cat="x", k=1)
    assert span is _NULL_SPAN
    with span as s:
        s.set(extra=2)  # must be a silent no-op
    assert tracer.roots() == []


def test_span_nesting_and_args():
    tracer = Tracer(enabled=True)
    with tracer.span("outer", cat="a", n=1) as outer:
        with tracer.span("inner", cat="b"):
            pass
        outer.set(n=2, extra="x")
    roots = tracer.roots()
    assert [r.name for r in roots] == ["outer"]
    assert roots[0].args == {"n": 2, "extra": "x"}
    assert [c.name for c in roots[0].children] == ["inner"]
    assert roots[0].dur_us >= roots[0].children[0].dur_us >= 0


def test_spans_iterator_is_depth_first():
    tracer = Tracer(enabled=True)
    with tracer.span("a"):
        with tracer.span("b"):
            pass
        with tracer.span("c"):
            pass
    assert [s.name for s in tracer.spans()] == ["a", "b", "c"]


def test_span_survives_exception():
    tracer = Tracer(enabled=True)
    with pytest.raises(ValueError):
        with tracer.span("boom"):
            raise ValueError("x")
    assert [r.name for r in tracer.roots()] == ["boom"]


def test_clear_resets_everything():
    tracer = Tracer(enabled=True)
    with tracer.span("a"):
        tracer.count("c")
        tracer.gauge("g", 1.0)
    tracer.clear()
    assert tracer.roots() == []
    assert tracer.metrics.counters() == {}
    assert tracer.metrics.gauges() == {}


def test_threaded_spans_have_distinct_tids():
    tracer = Tracer(enabled=True)
    # keep all threads alive together: thread idents are reused once a
    # thread exits, which would collapse the tids
    barrier = threading.Barrier(3)

    def work():
        with tracer.span("t"):
            barrier.wait(timeout=10)

    threads = [threading.Thread(target=work) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    with tracer.span("main"):
        pass
    roots = tracer.roots()
    assert len(roots) == 4
    assert len({r.tid for r in roots}) == 4


# -- metrics -----------------------------------------------------------------

def test_metrics_count_and_gauge():
    m = MetricsRegistry()
    m.count("tiles")
    m.count("tiles", 4)
    m.gauge("ratio", 1.25)
    assert m.counters() == {"tiles": 5}
    assert m.gauges() == {"ratio": 1.25}
    assert m.as_dict() == {"counters": {"tiles": 5},
                           "gauges": {"ratio": 1.25}}


def test_metrics_counts_are_thread_safe():
    m = MetricsRegistry()

    def bump():
        for _ in range(1000):
            m.count("n")

    threads = [threading.Thread(target=bump) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert m.counters()["n"] == 4000


# -- chrome export -----------------------------------------------------------

def test_to_chrome_shape_and_validation():
    tracer = Tracer(enabled=True)
    with tracer.span("outer", cat="compiler", n=3):
        with tracer.span("inner"):
            pass
    tracer.count("tiles", 7)
    data = tracer.to_chrome()
    assert validate_chrome_trace(data) == []
    events = data["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    counters = [e for e in events if e["ph"] == "C"]
    assert {e["name"] for e in complete} == {"outer", "inner"}
    assert len(counters) == 1
    outer = next(e for e in complete if e["name"] == "outer")
    assert outer["cat"] == "compiler"
    assert outer["args"] == {"n": 3}
    # the whole payload must be JSON-serializable
    json.dumps(data)


def test_write_chrome(tmp_path):
    tracer = Tracer(enabled=True)
    with tracer.span("x"):
        pass
    path = tmp_path / "trace.json"
    tracer.write_chrome(path)
    data = json.loads(path.read_text())
    assert validate_chrome_trace(data) == []


def test_validate_chrome_trace_catches_bad_shapes():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": "nope"}) != []
    assert validate_chrome_trace(
        {"traceEvents": [{"ph": "X", "name": "a"}]}) != []
    assert validate_chrome_trace(
        {"traceEvents": [{"ph": "C", "name": "a", "ts": 0}]}) != []
    ok = {"traceEvents": [
        {"name": "a", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1},
        {"name": "c", "ph": "C", "ts": 0, "pid": 1, "args": {"v": 2}},
    ]}
    assert validate_chrome_trace(ok) == []


def test_render_tree_mentions_spans_and_metrics():
    tracer = Tracer(enabled=True)
    with tracer.span("compile", cat="compiler"):
        with tracer.span("grouping"):
            pass
    tracer.count("tiles", 3)
    tracer.gauge("redundancy", 1.5)
    text = tracer.render_tree()
    assert "compile" in text and "grouping" in text
    assert "tiles = 3" in text
    assert "redundancy" in text


# -- global tracer / tracing() ----------------------------------------------

def test_tracing_installs_and_restores():
    before = get_tracer()
    with tracing() as tracer:
        assert get_tracer() is tracer
        assert tracer.enabled
    assert get_tracer() is before


def test_set_tracer_roundtrip():
    before = get_tracer()
    mine = Tracer(enabled=True)
    set_tracer(mine)
    try:
        assert get_tracer() is mine
    finally:
        set_tracer(before)


# -- decision log ------------------------------------------------------------

def _decision(round_no=1, group="a", child="b", accepted=False,
              reason="r", overlap=None):
    return MergeDecision(round_no, group, child, 100, overlap, 0.4,
                         accepted, reason)


def test_decision_log_dedups_repeated_rejections():
    log = DecisionLog()
    log.record(_decision(round_no=1))
    log.record(_decision(round_no=2))  # same (group, child, reason)
    log.record(_decision(round_no=2, reason="other"))
    assert len(log.rejections) == 2


def test_decision_log_keeps_all_merges():
    log = DecisionLog()
    log.record(_decision(round_no=1, accepted=True, overlap=0.1))
    log.record(_decision(round_no=2, accepted=True, overlap=0.1))
    assert len(log.merges) == 2


def test_decision_render_mentions_overlap_and_reason():
    d = _decision(accepted=True, reason="overlap within threshold",
                  overlap=0.125)
    text = d.render()
    assert "merge" in text
    assert "0.125" in text or "0.12" in text
    assert "overlap within threshold" in text
    assert d.to_dict()["accepted"] is True


# -- thread-name metadata and async spans ------------------------------------

def test_name_thread_emits_metadata_event():
    tracer = Tracer(enabled=True)
    tracer.name_thread("serve-worker-0")
    with tracer.span("work"):
        pass
    doc = tracer.to_chrome()
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert len(meta) == 1
    assert meta[0]["name"] == "thread_name"
    assert meta[0]["cat"] == "__metadata"
    assert meta[0]["args"] == {"name": "serve-worker-0"}
    assert validate_chrome_trace(doc) == []


def test_name_thread_defaults_to_python_thread_name():
    tracer = Tracer(enabled=True)

    def worker():
        tracer.name_thread()

    t = threading.Thread(target=worker, name="my-worker")
    t.start()
    t.join()
    with tracer.span("anchor"):
        pass
    names = [e["args"]["name"] for e in tracer.to_chrome()["traceEvents"]
             if e["ph"] == "M"]
    assert names == ["my-worker"]


def test_async_events_correlate_across_threads():
    tracer = Tracer(enabled=True)
    tracer.async_begin("req", 42, cat="serve")

    def worker():
        tracer.async_instant("req", 42, cat="serve", at="dequeued")
        tracer.async_end("req", 42, cat="serve", outcome="completed")

    t = threading.Thread(target=worker)
    t.start()
    t.join()
    events = tracer.async_events()
    assert [e["ph"] for e in events] == ["b", "n", "e"]
    assert all(e["id"] == 42 and e["name"] == "req" for e in events)
    # the begin and the instant came from different threads
    assert events[0]["tid"] != events[1]["tid"]
    doc = tracer.to_chrome()
    assert validate_chrome_trace(doc) == []
    chrome = [e for e in doc["traceEvents"] if e["ph"] in "bne"]
    assert all(e["id"] == "42" for e in chrome)  # ids stringified
    assert all("pid" in e for e in chrome)


def test_async_and_name_thread_are_noops_when_disabled():
    tracer = Tracer(enabled=False)
    tracer.name_thread("nope")
    tracer.async_begin("req", 1)
    tracer.async_instant("req", 1)
    tracer.async_end("req", 1)
    assert tracer.async_events() == []
    assert tracer.to_chrome()["traceEvents"] == []


def test_clear_drops_async_events_and_thread_names():
    tracer = Tracer(enabled=True)
    tracer.name_thread("x")
    tracer.async_begin("req", 1)
    tracer.clear()
    assert tracer.async_events() == []
    assert tracer.to_chrome()["traceEvents"] == []


def test_validator_accepts_metadata_and_async_phases():
    doc = {"traceEvents": [
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": 0,
         "args": {"name": "w0"}},
        {"ph": "b", "name": "req", "id": "1", "ts": 0.0},
        {"ph": "n", "name": "req", "id": "1", "ts": 1.0},
        {"ph": "e", "name": "req", "id": "1", "ts": 2.0},
    ]}
    assert validate_chrome_trace(doc) == []


def test_validator_rejects_malformed_metadata_and_async():
    problems = validate_chrome_trace({"traceEvents": [
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": 0},
        {"ph": "b", "name": "req", "ts": 0.0},  # missing id
    ]})
    assert any("args.name" in p for p in problems)
    assert any("lacks 'id'" in p for p in problems)
