"""Seeded random-pipeline generator + shrinker for differential fuzzing.

A :class:`PipelineSpec` is a pure-data description of a random 2-D
pipeline DAG — per stage: which producers it reads (the input image or
earlier stages), the stencil taps applied to each, and an optional case
split into two horizontal bands.  Being pure data makes three things
possible:

* **determinism** — specs are generated from a seeded ``Generator`` and
  re-built identically from their own ``repr``;
* **differential execution** — one spec compiles under any backend and
  tile configuration;
* **shrinking** — failing specs are minimized structurally (drop stages,
  rewire consumers, merge case splits, collapse stencils to their center
  tap) while re-checking the failure, so a fuzz failure prints a minimal
  reproducing DAG rather than a 9-stage haystack.

Every stage guards its stencil with interior conditions whose margin
covers the stencil reach (the idiom of the paper's Figure 1 listing), so
in-domain reads never leave producer domains and both backends agree
bit-for-bit on the boundary semantics (zero outside case regions).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro import CompileOptions, compile_pipeline
from repro.lang import (
    Case, Cast, Condition, Float, Function, Image, Int, Interval,
    Parameter, UChar, Variable,
)

#: tile-size choices per dimension explored by the fuzzer
TILE_CHOICES = (8, 16, 32, 64)
#: overlap thresholds explored by the fuzzer
THRESHOLD_CHOICES = (0.2, 0.4, 0.5)


@dataclass(frozen=True)
class StageSpec:
    """One random stage: producer indices (-1 = input image), the taps
    applied to each producer, and an optional band split constant."""

    #: producer indices; -1 reads the input image, k >= 0 reads stage k
    producers: tuple[int, ...]
    #: per producer: ((dx, dy, weight), ...) stencil taps
    taps: tuple[tuple[tuple[int, int, float], ...], ...]
    #: 0 = single case; > 0 splits the guarded interior at column
    #: ``band`` (second band negates the expression, so the split is
    #: observable)
    band: int = 0
    #: multiply producer terms instead of summing them (pointwise only)
    multiply: bool = False


@dataclass(frozen=True)
class PipelineSpec:
    """A reproducible random pipeline + compile configuration."""

    rows: int
    cols: int
    stages: tuple[StageSpec, ...]
    tile_sizes: tuple[int, int]
    overlap_threshold: float = 0.4
    specialize: bool = True
    #: 0 = skip the batch leg; N >= 2 additionally checks that
    #: ``run_batch`` over N random frames is bit-identical to N
    #: sequential single-frame calls, on both backends
    batch: int = 0
    #: integer mode: a ``UChar`` input image, ``Int`` stages with integer
    #: tap weights and a per-stage ``// 16`` to bound growth — the regime
    #: where ``CompileOptions.narrow`` actually narrows storage types
    integer: bool = False
    #: hinted mode: derive *legal* scheduling hints from the unhinted
    #: plan (a force over an actually-merged group, a forbid across two
    #: final groups, a tile override), recompile under them, and require
    #: a clean verify (RV6xx included) plus bit-identical output
    hinted: bool = False

    def options(self) -> CompileOptions:
        opts = CompileOptions.optimized(self.tile_sizes)
        opts = opts.with_threshold(self.overlap_threshold)
        if not self.specialize:
            opts = opts.with_specialize(False, simd=False)
        return opts


def random_spec(rng: np.random.Generator) -> PipelineSpec:
    """Draw a random pipeline spec: depth 2..7, stencil reach <= 2,
    fan-in 1..2, ~1/4 of stages case-split, ~1/5 pointwise products;
    ~1/4 of specs run in integer mode (small integer weights, products
    disabled so int32 provably cannot overflow)."""
    n_stages = int(rng.integers(2, 8))
    integer = bool(rng.random() < 0.25)

    def weight(lo: float, hi: float) -> float | int:
        if integer:
            w = int(rng.integers(-3, 4))
            return w if w else 1
        return round(float(rng.uniform(lo, hi)), 3)

    stages = []
    for i in range(n_stages):
        # candidate producers: image (-1) and all earlier stages; bias
        # toward the previous stage so depth actually builds up
        if i == 0:
            producers = (-1,)
        else:
            producers = (i - 1,)
            if rng.random() < 0.4:
                extra = int(rng.integers(-1, i))
                if extra not in producers:
                    producers = producers + (extra,)
        multiply = (not integer and len(producers) == 2
                    and rng.random() < 0.2)
        taps = []
        for _ in producers:
            if multiply or rng.random() < 0.25:
                # pointwise read (no reach)
                taps.append(((0, 0, weight(0.5, 1.5)),))
                continue
            reach = int(rng.integers(1, 3))
            n_taps = int(rng.integers(2, 6))
            seen = {(0, 0)}
            stage_taps = [(0, 0, weight(0.1, 0.5))]
            for _ in range(n_taps):
                dx = int(rng.integers(-reach, reach + 1))
                dy = int(rng.integers(-reach, reach + 1))
                if (dx, dy) in seen:
                    continue
                seen.add((dx, dy))
                stage_taps.append((dx, dy, weight(-0.5, 0.5)))
            taps.append(tuple(stage_taps))
        band = int(rng.integers(8, 24)) if rng.random() < 0.25 else 0
        stages.append(StageSpec(tuple(producers), tuple(taps), band,
                                multiply))
    rows = int(rng.integers(24, 49))
    cols = int(rng.integers(24, 49))
    tiles = (int(rng.choice(TILE_CHOICES)), int(rng.choice(TILE_CHOICES)))
    threshold = float(rng.choice(THRESHOLD_CHOICES))
    specialize = bool(rng.random() < 0.85)
    batch = int(rng.integers(2, 6)) if rng.random() < 0.4 else 0
    hinted = bool(rng.random() < 0.3)
    return PipelineSpec(rows, cols, tuple(stages), tiles, threshold,
                        specialize, batch, integer, hinted)


def build_pipeline(spec: PipelineSpec):
    """Materialize a spec as DSL objects.

    Returns ``(outputs, values, image, out_name)``; the single output is
    the last stage (earlier stages not reachable from it simply drop out
    of the graph).
    """
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    I = Image(UChar if spec.integer else Float, [R + 2, C + 2],
              name="fz_I")
    x, y = Variable("x"), Variable("y")
    row, col = Interval(0, R + 1, 1), Interval(0, C + 1, 1)

    built = []
    for i, ss in enumerate(spec.stages):
        f = Function(varDom=([x, y], [row, col]),
                     typ=Int if spec.integer else Float,
                     name=f"fz_s{i}")

        def term(producer_idx: int, taps) -> object:
            producer = I if producer_idx < 0 else built[producer_idx]
            expr = None
            for dx, dy, w in taps:
                tap = producer(x + dx, y + dy)
                if spec.integer and producer_idx < 0:
                    # keep interpreter arithmetic in int32, like C's
                    # integer promotion of the uint8 load
                    tap = Cast(Int, tap)
                t = tap * w
                expr = t if expr is None else expr + t
            return expr

        terms = [term(p, t) for p, t in zip(ss.producers, ss.taps)]
        if ss.multiply and len(terms) == 2:
            expr = terms[0] * terms[1]
        else:
            expr = terms[0]
            for t in terms[1:]:
                expr = expr + t
        if spec.integer and i > 0:
            # per-stage amplification is at most 2 producers * 6 taps *
            # |w|<=3 = 36x; dividing by 16 caps depth-7 magnitudes at
            # 255*36 * (36/16)^6 ~ 1.2e6, far inside int32
            expr = expr // 16
        margin = max((max(abs(dx), abs(dy)) for taps in ss.taps
                      for dx, dy, _ in taps), default=0)
        if margin == 0 and ss.band == 0:
            f.defn = expr
        else:
            m = margin
            cond = (Condition(x, ">=", m) & Condition(x, "<=", R + 1 - m)
                    & Condition(y, ">=", m) & Condition(y, "<=", C + 1 - m))
            if ss.band == 0:
                f.defn = [Case(cond, expr)]
            else:
                left = cond & Condition(y, "<=", ss.band)
                right = cond & Condition(y, ">=", ss.band + 1)
                flip = expr * (-1 if spec.integer else -1.0)
                f.defn = [Case(left, expr), Case(right, flip)]
        built.append(f)

    values = {R: spec.rows, C: spec.cols}
    return [built[-1]], values, I, built[-1].name


def make_input(spec: PipelineSpec, rng: np.random.Generator) -> np.ndarray:
    shape = (spec.rows + 2, spec.cols + 2)
    if spec.integer:
        return rng.integers(0, 256, size=shape, dtype=np.uint8)
    return rng.random(shape, dtype=np.float32)


def derive_hints(plan):
    """Legal-by-construction scheduling hints for a compiled plan.

    Derived from the final grouping the automatic scheduler already
    chose: a ``force_group`` over two stages that *did* merge, a
    ``forbid_group`` across two stages in *different* final groups, and
    a ``tile_override`` restating a tiled group's sizes — so every
    directive is satisfiable and a hinted recompile must verify clean
    (RV6xx included).  Returns ``None`` when the plan offers nothing to
    hint (single pointwise group, untiled)."""
    from repro.schedule import ScheduleHints

    force = []
    forbid = []
    tile = []
    groups = plan.group_plans
    for gp in groups:
        names = sorted(s.name for s in gp.ordered_stages)
        if len(names) >= 2:
            force.append((names[0], names[1]))
            break
    if len(groups) >= 2:
        forbid.append((groups[0].ordered_stages[0].name,
                       groups[1].ordered_stages[0].name))
    for gp in groups:
        if gp.tile_sizes:
            tile.append((gp.ordered_stages[0].name,
                         tuple(gp.tile_sizes)))
            break
    if not (force or forbid or tile):
        return None
    return ScheduleHints(force_group=force, forbid_group=forbid,
                         tile_override=tile)


def check_spec(spec: PipelineSpec, *, native: bool = True,
               rtol: float = 1e-4, atol: float = 1e-5) -> str | None:
    """Compile and differentially execute one spec.

    Checks, in order: the static verifier reports no errors; the tiled
    interpreter matches the untiled (``CompileOptions.base()``)
    interpreter; and (when ``native`` and a compiler is available) the
    native backend matches the interpreter — first as compiled, then
    recompiled with precision narrowing (``narrow=True``, verified
    including the RV5xx range audit), whose output must be bit-identical
    for integer pipelines and within one ulp for float32.  Returns
    ``None`` on agreement or a failure description.
    """
    outputs, values, image, out_name = build_pipeline(spec)
    data = make_input(spec, np.random.default_rng(7))
    inputs = {image: data}
    try:
        compiled = compile_pipeline(outputs, values, spec.options(),
                                    name="fuzz")
        report = compiled.verify()
        if report.errors:
            return ("verify errors: "
                    + "; ".join(d.code + " " + d.message
                                for d in report.errors))
        got = compiled(values, inputs)[out_name]

        base = compile_pipeline(outputs, values, CompileOptions.base(),
                                name="fuzz_base")
        want = base(values, inputs)[out_name]
    except Exception as exc:
        return f"{type(exc).__name__}: {exc}"
    if not np.allclose(got, want, rtol=rtol, atol=atol):
        bad = np.argwhere(~np.isclose(got, want, rtol=rtol, atol=atol))
        return (f"tiled interpreter diverges from untiled at "
                f"{len(bad)} points, first {tuple(bad[0])}: "
                f"{got[tuple(bad[0])]} vs {want[tuple(bad[0])]}")

    if spec.hinted:
        # hinted leg: hints derived from the unhinted plan are legal by
        # construction; the hinted plan must verify clean (including the
        # RV6xx hint audit, which runs automatically on hinted plans)
        # and produce bit-identical output — grouping and tiling hints
        # never change per-point arithmetic
        hints = derive_hints(compiled.plan)
        if hints is not None:
            try:
                hinted = compile_pipeline(outputs, values, spec.options(),
                                          name="fuzz_hinted", hints=hints)
                h_report = hinted.verify()
                if h_report.errors:
                    return ("hinted verify errors "
                            f"(hints {hints.describe()}): "
                            + "; ".join(d.code + " " + d.message
                                        for d in h_report.errors))
                got_hinted = hinted(values, inputs)[out_name]
            except Exception as exc:
                return (f"hinted ({hints.describe()}): "
                        f"{type(exc).__name__}: {exc}")
            if not np.array_equal(got_hinted, got):
                bad = np.argwhere(got_hinted != got)
                return (f"hinted compile (hints {hints.describe()}) not "
                        f"bit-identical to unhinted at {len(bad)} "
                        f"points, first {tuple(bad[0])}: "
                        f"{got_hinted[tuple(bad[0])]} vs "
                        f"{got[tuple(bad[0])]}")

    frames = []
    if spec.batch >= 2:
        frame_rng = np.random.default_rng(11)
        frames = [{image: make_input(spec, frame_rng)}
                  for _ in range(spec.batch)]
        try:
            seq = [compiled(values, frame)[out_name] for frame in frames]
            bat = [r[out_name]
                   for r in compiled.run_batch(values, frames)]
        except Exception as exc:
            return f"interp batch: {type(exc).__name__}: {exc}"
        for i, (a, b) in enumerate(zip(seq, bat)):
            if not np.array_equal(a, b):
                return (f"interpreter run_batch(n={spec.batch}) is not "
                        f"bit-identical to sequential calls at frame {i}")

    if native:
        from repro.codegen.build import build_native
        try:
            nat = build_native(compiled.plan, "fuzz")
            got_nat = nat(values, inputs)[out_name]
        except Exception as exc:
            return f"native: {type(exc).__name__}: {exc}"
        if not np.allclose(got_nat, got, rtol=rtol, atol=atol):
            bad = np.argwhere(~np.isclose(got_nat, got, rtol=rtol,
                                          atol=atol))
            return (f"native diverges from interpreter at {len(bad)} "
                    f"points, first {tuple(bad[0])}: "
                    f"{got_nat[tuple(bad[0])]} vs {got[tuple(bad[0])]}")
        if frames:
            try:
                seq_n = [nat(values, frame)[out_name] for frame in frames]
                bat_n = [r[out_name]
                         for r in nat.run_batch(values, frames)]
            except Exception as exc:
                return f"native batch: {type(exc).__name__}: {exc}"
            for i, (a, b) in enumerate(zip(seq_n, bat_n)):
                if not np.array_equal(a, b):
                    return (f"native run_batch(n={spec.batch}) is not "
                            f"bit-identical to sequential calls at "
                            f"frame {i}")

        # precision-narrowing leg: the narrowed build must agree with
        # the unnarrowed native output
        try:
            narrowed = compile_pipeline(outputs, values,
                                        spec.options().with_narrow(True),
                                        name="fuzz_narrow")
            report = narrowed.verify()
            if report.errors:
                return ("narrow verify errors: "
                        + "; ".join(d.code + " " + d.message
                                    for d in report.errors))
            nat_narrow = build_native(narrowed.plan, "fuzz_narrow")
            got_narrow = nat_narrow(values, inputs)[out_name]
        except Exception as exc:
            return f"narrow: {type(exc).__name__}: {exc}"
        if np.issubdtype(got_nat.dtype, np.integer):
            if not np.array_equal(got_narrow, got_nat):
                bad = np.argwhere(got_narrow != got_nat)
                return (f"narrowed native output not bit-identical at "
                        f"{len(bad)} points, first {tuple(bad[0])}: "
                        f"{got_narrow[tuple(bad[0])]} vs "
                        f"{got_nat[tuple(bad[0])]}")
        elif not np.allclose(got_narrow, got_nat, rtol=2e-7, atol=0):
            return "narrowed native output diverges beyond one ulp"
    return None


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------

def _rewire(stages: tuple[StageSpec, ...], removed: int
            ) -> tuple[StageSpec, ...]:
    """Drop stage ``removed``; consumers re-read its first producer."""
    target = stages[removed].producers[0]
    out = []
    for i, ss in enumerate(stages):
        if i == removed:
            continue
        seen: set[int] = set()
        new_prods, new_taps = [], []
        for p, taps in zip(ss.producers, ss.taps):
            if p == removed:
                p = target
            if p > removed:
                p -= 1
            if p in seen:  # dedupe, keeping taps aligned with producers
                continue
            seen.add(p)
            new_prods.append(p)
            new_taps.append(taps)
        out.append(replace(ss, producers=tuple(new_prods),
                           taps=tuple(new_taps),
                           multiply=ss.multiply and len(new_prods) == 2))
    return tuple(out)


def shrink_candidates(spec: PipelineSpec):
    """Strictly-smaller variants of ``spec``, most aggressive first."""
    n = len(spec.stages)
    # drop the output stage (previous stage becomes the output)
    if n > 1:
        yield replace(spec, stages=spec.stages[:-1])
    # remove an interior stage, rewiring consumers
    for i in range(n - 1):
        if n > 1:
            yield replace(spec, stages=_rewire(spec.stages, i))
    # per-stage simplifications
    for i, ss in enumerate(spec.stages):
        if ss.band:
            yield replace(spec, stages=spec.stages[:i]
                          + (replace(ss, band=0),) + spec.stages[i + 1:])
        if any(len(t) > 1 for t in ss.taps):
            center = tuple((t[0],) for t in ss.taps)
            yield replace(spec, stages=spec.stages[:i]
                          + (replace(ss, taps=center),)
                          + spec.stages[i + 1:])
        if len(ss.producers) > 1:
            solo = replace(ss, producers=ss.producers[:1],
                           taps=ss.taps[:1], multiply=False)
            yield replace(spec, stages=spec.stages[:i] + (solo,)
                          + spec.stages[i + 1:])
    # tame the configuration
    if spec.hinted:
        yield replace(spec, hinted=False)
    if spec.batch > 2:
        yield replace(spec, batch=2)
    if spec.batch:
        yield replace(spec, batch=0)
    if spec.tile_sizes != (32, 32):
        yield replace(spec, tile_sizes=(32, 32))
    if not spec.specialize:
        yield replace(spec, specialize=True)


def shrink(spec: PipelineSpec, failure: str, *, native: bool = True,
           max_steps: int = 60) -> tuple[PipelineSpec, str]:
    """Greedy structural shrink: repeatedly adopt the first strictly
    smaller candidate that still fails, until none does (or the step
    budget runs out).  Returns the minimal spec and its failure."""
    steps = 0
    while steps < max_steps:
        for candidate in shrink_candidates(spec):
            steps += 1
            result = check_spec(candidate, native=native)
            if result is not None:
                spec, failure = candidate, result
                break
            if steps >= max_steps:
                break
        else:
            break
    return spec, failure
