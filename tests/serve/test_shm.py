"""Transport-layer tests: slab allocator, generation tags, views, leaks.

Everything here runs in one process — the cross-process behaviour is
exercised by ``test_router.py`` / ``test_router_faults.py``; these tests
pin down the allocator contract those builds on: recycled slots, stale
generations rejected, headers tiny and picklable, views aliasing the
same pages, and ``close()`` leaving nothing behind in ``/dev/shm``.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.serve.shm import (
    MIN_SLOT_BYTES, SegmentMap, ShmBufferPool, SlabAllocator, StaleSlot,
    _size_class, live_segments, new_token, unlink_segments,
)


@pytest.fixture
def alloc():
    token = new_token()
    allocator = SlabAllocator(token, "t")
    yield allocator
    allocator.close(unlink=True)
    assert live_segments(token) == []


def test_size_classes_power_of_two():
    assert _size_class(1) == MIN_SLOT_BYTES
    assert _size_class(MIN_SLOT_BYTES) == MIN_SLOT_BYTES
    assert _size_class(MIN_SLOT_BYTES + 1) == 2 * MIN_SLOT_BYTES
    assert _size_class(3 * MIN_SLOT_BYTES) == 4 * MIN_SLOT_BYTES


def test_alloc_recycles_slots(alloc):
    a = alloc.alloc(100)
    key, gen = a.key, a.gen
    alloc.free(key, gen)
    b = alloc.alloc(100)
    assert b.key == key, "freed slot should be recycled"
    assert b.gen == gen + 1, "recycling must bump the generation"
    stats = alloc.stats()
    assert stats["hits"] >= 1 and stats["segments"] == 1


def test_stale_generation_rejected(alloc):
    a = alloc.alloc(64)
    key, gen = a.key, a.gen
    alloc.check_current(key, gen)  # live lease passes
    assert alloc.free(key, gen) is True
    assert alloc.free(key, gen) is False, "double free is stale"
    with pytest.raises(StaleSlot):
        alloc.check_current(key, gen)
    assert alloc.stats()["stale_frees"] == 1


def test_header_is_tiny_and_picklable(alloc):
    lease = alloc.alloc(1 << 16)
    header = lease.header((128, 128), np.float32)
    wire = pickle.dumps(header)
    assert len(wire) < 256, "headers must not carry pixel data"
    segment, offset, gen, shape, dtype = header
    assert shape == (128, 128) and np.dtype(dtype) == np.float32
    assert gen == lease.gen and segment == lease.key[0]


def test_view_round_trip_shares_pages(alloc):
    lease = alloc.alloc(64 * 64 * 4)
    src = lease.ndarray((64, 64), np.float32)
    src[:] = np.arange(64 * 64, dtype=np.float32).reshape(64, 64)

    peer = SegmentMap()
    try:
        dst = peer.view(lease.header((64, 64), np.float32))
        assert np.array_equal(dst, src)
        # same physical pages: a write on one side shows on the other
        src[3, 5] = -1.0
        assert dst[3, 5] == -1.0
        assert peer.contains(dst)
        assert not peer.contains(np.zeros(4, dtype=np.float32))
    finally:
        del dst
        peer.close()


def test_pool_export_and_free_slot(alloc):
    pool = ShmBufferPool(alloc)
    out = pool.acquire((32, 32), np.float32)
    out[:] = 7.0
    exported = pool.export([out])
    assert list(exported) == [id(out)]
    lease = exported[id(out)]
    # exported slots stay leased until free_slot (the router's "free")
    assert alloc.stats()["leased"] == 1
    assert pool.free_slot(lease.key, lease.gen) is True
    assert alloc.stats()["leased"] == 0
    # a second free with the shipped generation is stale, not a crash
    assert pool.free_slot(lease.key, lease.gen) is False


def test_pool_release_unexported(alloc):
    pool = ShmBufferPool(alloc)
    a = pool.acquire((8, 8), np.float64)
    b = pool.acquire((8, 8), np.float64)
    pool.release(a, b)
    assert alloc.stats()["leased"] == 0
    c = pool.acquire((8, 8), np.float64)
    assert alloc.stats()["hits"] >= 1
    pool.release(c)


def test_unlink_segments_reaps_by_role():
    token = new_token()
    a = SlabAllocator(token, "w0g0")
    b = SlabAllocator(token, "w1g0")
    a.alloc(10)
    b.alloc(10)
    assert len(live_segments(token)) == 2
    # reap only the "dead worker"'s slabs
    assert unlink_segments(token, role="w0g0") == 1
    assert len(live_segments(token)) == 1
    assert unlink_segments(token) == 1
    assert live_segments(token) == []
    a.close(unlink=False)
    b.close(unlink=False)


def test_close_is_idempotent_and_leak_free():
    token = new_token()
    allocator = SlabAllocator(token, "t")
    allocator.alloc(2 * MIN_SLOT_BYTES)
    allocator.alloc(100)
    assert len(live_segments(token)) == 2
    allocator.close(unlink=True)
    allocator.close(unlink=True)
    assert live_segments(token) == []
    with pytest.raises(RuntimeError):
        allocator.alloc(1)
