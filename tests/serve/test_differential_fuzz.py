"""Cross-backend differential fuzzing.

Each sample draws a random pipeline DAG (depth, stencil footprints, case
splits, fan-in) and a random compile configuration (tile sizes, overlap
threshold, specialization), then demands three-way agreement: the static
verifier is clean, the tiled interpreter matches the untiled one, and
the native backend matches the interpreter.  A failing sample is shrunk
to a minimal reproducing spec before the test fails, so CI output shows
a small DAG, not a seven-stage haystack.

Scale and determinism are environment-driven (the CI matrix pins both):

* ``REPRO_FUZZ_SEED`` — base seed (default 0)
* ``REPRO_FUZZ_N``    — samples per run (default 12 for local runs)
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.codegen.build import compiler_available
from tests.serve import fuzzlib
from tests.serve.fuzzlib import (
    PipelineSpec, StageSpec, check_spec, random_spec, shrink,
    shrink_candidates,
)

FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0"))
FUZZ_N = int(os.environ.get("REPRO_FUZZ_N", "12"))
NATIVE = compiler_available()


@pytest.mark.parametrize("sample", range(FUZZ_N))
def test_random_pipeline_backends_agree(sample):
    spec = random_spec(np.random.default_rng((FUZZ_SEED, sample)))
    failure = check_spec(spec, native=NATIVE)
    if failure is None:
        return
    minimal, minimal_failure = shrink(spec, failure, native=NATIVE)
    pytest.fail(
        f"differential fuzz failure (REPRO_FUZZ_SEED={FUZZ_SEED}, "
        f"sample={sample}, native={NATIVE}):\n"
        f"  original failure: {failure}\n"
        f"  minimal reproducing spec:\n    {minimal!r}\n"
        f"  minimal failure: {minimal_failure}")


def test_generator_is_deterministic():
    specs = [random_spec(np.random.default_rng((FUZZ_SEED, 0)))
             for _ in range(2)]
    assert specs[0] == specs[1]
    # and different samples explore different pipelines
    other = random_spec(np.random.default_rng((FUZZ_SEED, 1)))
    assert other != specs[0]


def test_spec_repr_round_trips():
    spec = random_spec(np.random.default_rng(42))
    clone = eval(repr(spec),  # noqa: S307 - controlled input
                 {"PipelineSpec": PipelineSpec, "StageSpec": StageSpec})
    assert clone == spec


def test_shrink_candidates_are_structurally_valid():
    """Every shrink step must itself be a well-formed DAG: producer
    indices stay earlier-than-consumer, taps stay aligned."""
    for seed in range(10):
        spec = random_spec(np.random.default_rng(seed))
        for candidate in shrink_candidates(spec):
            assert candidate.stages, candidate
            for i, stage in enumerate(candidate.stages):
                assert len(stage.producers) == len(stage.taps)
                for producer in stage.producers:
                    assert -1 <= producer < i


def test_shrink_converges_to_minimal_spec(monkeypatch):
    """With an injected failure predicate ('any stage has a band split'),
    the shrinker must reach a 1-stage pipeline that still 'fails'."""
    def fake_check(spec, *, native=True, **kwargs):
        if any(stage.band for stage in spec.stages):
            return "injected: band present"
        return None

    monkeypatch.setattr(fuzzlib, "check_spec", fake_check)
    for seed in range(100):
        spec = random_spec(np.random.default_rng(seed))
        if any(stage.band for stage in spec.stages):
            break
    else:
        pytest.skip("no banded spec in the first 100 seeds")
    minimal, failure = shrink(spec, "injected: band present", native=False)
    assert failure == "injected: band present"
    assert len(minimal.stages) == 1
    assert minimal.stages[0].band
    assert len(minimal.stages[0].producers) == 1


def test_check_spec_reports_verifier_findings(monkeypatch):
    """check_spec routes static-verifier errors into the failure string
    (sanity check that the 'verify() is clean' leg actually bites)."""
    spec = random_spec(np.random.default_rng(3))

    class FakeDiag:
        code = "X001"
        message = "injected finding"

    class FakeReport:
        errors = [FakeDiag()]

    class FakeCompiled:
        def verify(self):
            return FakeReport()

    monkeypatch.setattr(fuzzlib, "compile_pipeline",
                        lambda *a, **kw: FakeCompiled())
    failure = check_spec(spec, native=False)
    assert failure is not None and "X001" in failure
