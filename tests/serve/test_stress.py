"""Concurrency stress: many clients, one service; backpressure; lifecycle.

All stress runs use the interpreter backend so they exercise the service
machinery (queue, workers, pool, futures) deterministically on any
machine — native-path concurrency is covered by
``test_native_concurrency.py``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve import Overloaded, PipelineService

CLIENTS = 6
FRAMES = 6


def test_concurrent_clients_results_bit_identical(served):
    """N threads x M frames: every result equals its serial ground truth,
    no future is lost, duplicated, or resolved with another client's frame."""
    inputs = {(k, i): served.input_for(1000 * k + i)
              for k in range(CLIENTS) for i in range(FRAMES)}
    want = {key: served.direct(data) for key, data in inputs.items()}

    got: dict = {}
    errors: list = []
    with PipelineService(served.compiled, backend="interpreter",
                         workers=3, max_queue=256) as service:

        def client(k: int) -> None:
            futures = [(i, service.submit(served.values, inputs[(k, i)]))
                       for i in range(FRAMES)]
            for i, future in futures:
                try:
                    with future.result(60) as frame:
                        got[(k, i)] = frame.outputs[served.out].copy()
                except Exception as exc:  # noqa: BLE001 - collected below
                    errors.append(((k, i), exc))

        threads = [threading.Thread(target=client, args=(k,))
                   for k in range(CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = service.stats()

    assert not errors, errors[:3]
    assert len(got) == CLIENTS * FRAMES  # nothing lost, nothing duplicated
    mismatched = [key for key in want
                  if not np.array_equal(got[key], want[key])]
    assert not mismatched, f"{len(mismatched)} frames wrong: {mismatched[:5]}"
    assert stats.submitted == stats.completed == CLIENTS * FRAMES
    assert stats.rejected == 0 and stats.failures == 0
    assert stats.inflight == 0 and stats.queue_depth == 0


def test_full_queue_rejects_with_overloaded_not_deadlock(served):
    """A paused service fills its bounded queue; further submissions must
    raise Overloaded promptly (never block), and everything accepted
    completes after resume."""
    max_queue, workers = 3, 1
    with PipelineService(served.compiled, backend="interpreter",
                         workers=workers, max_queue=max_queue) as service:
        service.pause()
        accepted, rejected = [], 0
        # capacity is max_queue + (<= 1 dequeued-and-held per worker), so
        # this many submissions *must* overflow
        for seed in range(max_queue + workers + 2):
            try:
                accepted.append(
                    service.submit(served.values, served.input_for(seed)))
            except Overloaded:
                rejected += 1
        assert rejected >= 1
        assert len(accepted) <= max_queue + workers
        service.resume()
        for future in accepted:
            future.result(60).release()  # completes; no deadlock
        stats = service.stats()
    assert stats.rejected == rejected
    assert stats.completed == len(accepted)
    assert stats.rejection_rate == pytest.approx(
        rejected / (len(accepted) + rejected))


def test_release_during_traffic_is_safe(served):
    """Draining pools/arenas mid-stream must never corrupt in-flight
    frames — the pool merely re-allocates on the next acquire."""
    inputs = served.input_for(9)
    want = served.direct(inputs)
    stop = threading.Event()

    with PipelineService(served.compiled, backend="interpreter",
                         workers=2, max_queue=64) as service:

        def releaser() -> None:
            while not stop.is_set():
                service.release()

        thread = threading.Thread(target=releaser)
        thread.start()
        try:
            for _ in range(24):
                with service.run(served.values, inputs) as frame:
                    assert np.array_equal(frame.outputs[served.out], want)
        finally:
            stop.set()
            thread.join()
        assert service.stats().failures == 0


def test_close_drain_finishes_accepted_frames(served):
    service = PipelineService(served.compiled, backend="interpreter",
                              workers=1, max_queue=16)
    service.pause()
    futures = [service.submit(served.values, served.input_for(seed))
               for seed in range(4)]
    service.resume()
    service.close(drain=True)
    for future in futures:
        future.result(60).release()
    assert service.stats().completed == 4


def test_close_without_drain_cancels_backlog(served):
    workers = 1
    service = PipelineService(served.compiled, backend="interpreter",
                              workers=workers, max_queue=16)
    service.pause()
    futures = [service.submit(served.values, served.input_for(seed))
               for seed in range(6)]
    service.close(drain=False)
    done = cancelled = 0
    for future in futures:
        if future.cancelled():
            cancelled += 1
        else:
            future.result(60).release()
            done += 1
    # every future resolves exactly one way; at most one request per
    # worker was already dequeued (and thus completes)
    assert cancelled + done == len(futures)
    assert cancelled >= len(futures) - workers
    assert service.stats().cancelled == cancelled
