"""Request-lifecycle observability through the serving stack.

What this file pins down:

* every served frame carries a :class:`Timeline` whose stage durations
  (queue_wait + batch_wait + execute) sum to total *exactly* and track
  the client-observed latency;
* coalesced batch members get ``coalesced(batch_id, size)`` and
  ``dispatched(batch_size=...)`` marks;
* deadline drops are classified by reason (queue-wait expiry, paused at
  gate, late native, late batch member) in ``stats()``, the event log,
  and the Prometheus exposition;
* fallback state-machine transitions (build_failed, native_error,
  demoted) land in the event log — asserted under the same
  ``build_native`` monkeypatch fault injection the fault tests use;
* ``serve_metrics`` serves valid exposition text over HTTP (scraped
  with stdlib urllib);
* ``ServiceStats`` round-trips through ``to_dict``/``from_dict`` and
  renders the per-reason/per-stage breakdowns;
* ``sample_rate=1.0`` promotes requests to Chrome-trace async spans.
"""

from __future__ import annotations

import json
import time
import urllib.request

import numpy as np
import pytest

from repro.codegen import build as build_mod
from repro.codegen.build import BuildError
from repro.observe import Tracer, validate_chrome_trace
from repro.observe.export import validate_exposition_text
from repro.serve import (
    Deadline, DeadlineExceeded, PipelineService, ServiceStats,
)
from repro.serve.service import STAGES, _timeout_reason

from tests.serve.test_batching import batch_service
from tests.serve.test_faults import ExpiredAfterCall, FlakyNative, make_service


def interp_service(served, **kw):
    """A one-worker interpreter-only service (no build, deterministic)."""
    kw.setdefault("workers", 1)
    return PipelineService(served.compiled, backend="interpreter", **kw)


# ---------------------------------------------------------------------------
# timelines on served frames
# ---------------------------------------------------------------------------

def test_frame_timeline_stages_sum_to_total_exactly(served):
    with interp_service(served) as service:
        t0 = time.monotonic()
        frame = service.run(served.values, served.input_for(0))
        client_latency = time.monotonic() - t0
        frame.release()
    tl = frame.timeline()
    assert tl is not None
    kinds = [e.kind for e in tl.events()]
    assert kinds[:2] == ["submitted", "dequeued"]
    assert kinds[-1] == "completed"
    d = tl.durations()
    assert set(d) == set(STAGES)
    assert d["queue_wait"] + d["batch_wait"] + d["execute"] == d["total"]
    # the server-side total is bounded by what the client saw, and the
    # client only adds submit + future-wakeup overhead on top
    assert 0 <= d["total"] <= client_latency
    assert client_latency - d["total"] < 0.1
    assert tl.last("completed").fields["backend"] == "interpreter"


def test_timelines_feed_stage_histograms_and_stats(served):
    with interp_service(served) as service:
        for seed in range(3):
            service.run(served.values, served.input_for(seed)).release()
        stats = service.stats()
        hists = service.metrics.histograms()
    for stage in STAGES:
        assert hists[f"{stage}_seconds"].count == 3
        assert stats.stages[stage]["count"] == 3
        assert stats.stages[stage]["p50_ms"] >= 0.0
    assert "stages (p50/p99 ms):" in str(stats)


def test_event_log_records_full_lifecycle(served):
    with interp_service(served) as service:
        future = service.submit(served.values, served.input_for(0))
        future.result(30).release()
        rid = future.result(30).timeline().request_id
        events = service.events(request_id=rid)
    kinds = [e.kind for e in events]
    assert kinds == ["submitted", "dequeued", "dispatched", "completed"]
    assert service.event_log.appended >= 4


def test_events_path_streams_jsonl(served, tmp_path):
    path = tmp_path / "events.jsonl"
    with interp_service(served, events_path=path) as service:
        service.run(served.values, served.input_for(0)).release()
    records = [json.loads(line) for line in path.read_text().splitlines()]
    kinds = {rec["kind"] for rec in records}
    assert {"submitted", "dequeued", "dispatched", "completed"} <= kinds
    assert all("t_rel" in rec and "wall" in rec for rec in records)


# ---------------------------------------------------------------------------
# coalesced batches
# ---------------------------------------------------------------------------

def test_coalesced_members_carry_batch_marks(served, monkeypatch):
    service, native = batch_service(served, monkeypatch)
    with service:
        service.pause()
        futures = [service.submit(served.values, served.input_for(seed))
                   for seed in range(4)]
        service.resume()
        frames = [future.result(30) for future in futures]
        for frame in frames:
            frame.release()
    assert max(native.calls) >= 2
    batched = [f for f in frames
               if f.timeline().last("coalesced") is not None]
    assert len(batched) >= 2
    sizes = set()
    batch_ids = set()
    for frame in batched:
        tl = frame.timeline()
        coalesced = tl.last("coalesced")
        sizes.add(coalesced.fields["size"])
        batch_ids.add(coalesced.fields["batch_id"])
        dispatched = tl.last("dispatched")
        assert dispatched.fields["backend"] == "native"
        assert dispatched.fields["batch_size"] == coalesced.fields["size"]
        d = tl.durations()
        assert d["queue_wait"] + d["batch_wait"] + d["execute"] \
            == d["total"]
    assert all(size >= 2 for size in sizes)
    # members of one batch share the leader's request id
    assert len(batch_ids) <= len(batched) - 1 or len(batched) == 2


# ---------------------------------------------------------------------------
# drop reasons
# ---------------------------------------------------------------------------

def test_timeout_reason_classifier():
    assert _timeout_reason("queue wait") == "queue_wait"
    assert _timeout_reason("before native call") == "queue_wait"
    assert _timeout_reason("paused at gate") == "paused_at_gate"
    assert _timeout_reason("after native call") == "late_native"
    assert _timeout_reason("after batched native call") \
        == "late_batch_member"
    assert _timeout_reason("group blur tile (0, 1)") == "in_execution"


def test_queue_wait_expiry_reason(served):
    with interp_service(served) as service:
        service.pause()
        future = service.submit(served.values, served.input_for(0),
                                deadline_s=30.0)
        expired = service.submit(served.values, served.input_for(1),
                                 deadline=Deadline(0.0))
        service.resume()
        future.result(30).release()
        with pytest.raises(DeadlineExceeded) as err:
            expired.result(30)
        stats = service.stats()
    assert stats.timeouts == 1
    assert stats.timeouts_by_reason == {"queue_wait": 1}
    # the timeline rides on the exception for post-mortem inspection
    tl = err.value.timeline
    assert tl.last("dropped").fields["reason"] == "queue_wait"
    assert "deadline-exceeded (queue_wait=1)" in str(stats)


def test_paused_at_gate_reason(served):
    with interp_service(served) as service:
        service.pause()
        future = service.submit(served.values, served.input_for(0),
                                deadline_s=0.05)
        with pytest.raises(DeadlineExceeded) as err:
            future.result(30)
        stats = service.stats()
        dropped = service.events(kind="dropped")
        service.resume()
    assert "paused at gate" in str(err.value)
    assert stats.timeouts_by_reason == {"paused_at_gate": 1}
    assert dropped[-1].fields["reason"] == "paused_at_gate"
    assert service.metrics.counter("timeouts_paused_at_gate") == 1


class _FlipAfter:
    """Deadline double: healthy for the first ``n`` expiry checks, then
    expired — lets a batch member pass the pre-call check and die at the
    post-call one."""

    def __init__(self, n: int = 1):
        self._healthy_checks = n

    def check(self, where=""):
        pass

    def expired(self):
        if self._healthy_checks > 0:
            self._healthy_checks -= 1
            return False
        return True

    def remaining(self):
        return -0.001


def test_late_batch_member_reason(served, monkeypatch):
    service, native = batch_service(served, monkeypatch)
    with service:
        service.pause()
        on_time = service.submit(served.values, served.input_for(0))
        late = service.submit(served.values, served.input_for(1),
                              deadline=_FlipAfter(1))
        service.resume()
        on_time.result(30).release()
        with pytest.raises(DeadlineExceeded) as err:
            late.result(30)
        stats = service.stats()
    assert max(native.calls) == 2  # the two really were coalesced
    assert "after batched native call" in str(err.value)
    assert stats.timeouts_by_reason == {"late_batch_member": 1}
    assert err.value.timeline.last("dropped").fields["reason"] \
        == "late_batch_member"


def test_late_native_reason(served, monkeypatch):
    from tests.serve.test_faults import LateNative

    shape = (served.rows + 2, served.cols + 2)
    monkeypatch.setattr(
        build_mod, "build_native",
        lambda plan, name="pipeline", **kw: LateNative(served.out, shape))
    with make_service(served, coalesce=False) as service:
        assert service.wait_ready(30) == "native"
        future = service.submit(served.values, served.input_for(0),
                                deadline=ExpiredAfterCall())
        with pytest.raises(DeadlineExceeded):
            future.result(30)
        stats = service.stats()
    assert stats.timeouts_by_reason == {"late_native": 1}


# ---------------------------------------------------------------------------
# fallback transitions in the event log
# ---------------------------------------------------------------------------

def test_build_failure_transition_recorded(served, monkeypatch):
    def gcc_explodes(plan, name="pipeline", **kwargs):
        raise BuildError("injected: cc1 segfault")

    monkeypatch.setattr(build_mod, "build_native", gcc_explodes)
    with make_service(served) as service:
        assert service.wait_ready(30) == "interpreter"
        service.run(served.values, served.input_for(0)).release()
        transitions = [e.fields["transition"]
                       for e in service.events(kind="backend")]
        counters = service.metrics.counters()
    assert transitions == ["build_failed"]
    assert "BuildError" in \
        service.events(kind="backend")[0].fields["error"]
    assert counters["backend_build_failed"] == 1


def test_native_error_and_demotion_transitions(served, monkeypatch):
    flaky = FlakyNative()
    monkeypatch.setattr(build_mod, "build_native",
                        lambda plan, name="pipeline", **kw: flaky)
    with make_service(served, max_native_errors=2) as service:
        assert service.wait_ready(30) == "native"
        for seed in range(3):
            service.run(served.values, served.input_for(seed)).release()
        transitions = [e.fields["transition"]
                       for e in service.events(kind="backend")]
    # build_ready, then two native errors, the second demoting for good
    assert transitions == ["build_ready", "native_error", "native_error",
                           "demoted"]


def test_build_ready_transition_recorded(served, monkeypatch):
    service, _ = batch_service(served, monkeypatch)
    with service:
        transitions = [e.fields["transition"]
                       for e in service.events(kind="backend")]
    assert transitions == ["build_ready"]


def test_fallback_retry_dispatch_stays_inside_execute(served, monkeypatch):
    flaky = FlakyNative()
    monkeypatch.setattr(build_mod, "build_native",
                        lambda plan, name="pipeline", **kw: flaky)
    with make_service(served, max_native_errors=5) as service:
        assert service.wait_ready(30) == "native"
        frame = service.run(served.values, served.input_for(0))
        frame.release()
    tl = frame.timeline()
    dispatches = [e for e in tl.events() if e.kind == "dispatched"]
    assert [e.fields["backend"] for e in dispatches] \
        == ["native", "interpreter"]
    assert dispatches[1].fields["retry"] is True
    d = tl.durations()
    assert d["queue_wait"] + d["batch_wait"] + d["execute"] == d["total"]


# ---------------------------------------------------------------------------
# metrics exposition endpoint
# ---------------------------------------------------------------------------

def test_serve_metrics_scrape_is_valid_exposition(served):
    with interp_service(served) as service:
        for seed in range(2):
            service.run(served.values, served.input_for(seed)).release()
        server = service.serve_metrics()
        assert service.serve_metrics() is server  # memoized
        with urllib.request.urlopen(server.url, timeout=10) as resp:
            assert resp.status == 200
            assert "version=0.0.4" in resp.headers["Content-Type"]
            text = resp.read().decode("utf-8")
    assert validate_exposition_text(text) == []
    assert "repro_serve_completed_total 2" in text
    for stage in STAGES:
        assert f"repro_serve_{stage}_seconds_count 2" in text
        assert f'repro_serve_{stage}_seconds_bucket{{le="+Inf"}} 2' in text
    assert "repro_serve_backend_is_interpreter 1" in text
    assert "repro_serve_queue_depth 0" in text


def test_serve_metrics_exposes_timeout_reasons(served):
    with interp_service(served) as service:
        future = service.submit(served.values, served.input_for(0),
                                deadline=Deadline(0.0))
        with pytest.raises(DeadlineExceeded):
            future.result(30)
        server = service.serve_metrics()
        with urllib.request.urlopen(server.url, timeout=10) as resp:
            text = resp.read().decode("utf-8")
    assert validate_exposition_text(text) == []
    assert "repro_serve_timeouts_total 1" in text
    assert "repro_serve_timeouts_queue_wait_total 1" in text


# ---------------------------------------------------------------------------
# ServiceStats round-trip and rendering
# ---------------------------------------------------------------------------

def test_service_stats_round_trips(served):
    with interp_service(served) as service:
        service.run(served.values, served.input_for(0)).release()
        stats = service.stats()
    data = json.loads(json.dumps(stats.to_dict()))
    restored = ServiceStats.from_dict(data)
    assert restored == stats
    assert restored.to_dict() == stats.to_dict()
    assert restored.mean_batch_size == stats.mean_batch_size


# ---------------------------------------------------------------------------
# sampling -> Chrome-trace async spans
# ---------------------------------------------------------------------------

def test_sample_rate_promotes_requests_to_async_spans(served):
    tracer = Tracer(enabled=True)
    with interp_service(served, sample_rate=1.0,
                      tracer=tracer) as service:
        frame = service.run(served.values, served.input_for(0))
        frame.release()
    assert frame.timeline().sampled
    events = tracer.async_events()
    phases = [e["ph"] for e in events]
    assert phases == ["b", "n", "e"]
    assert all(e["name"].endswith(".request") for e in events)
    assert events[-1]["args"]["outcome"] == "completed"
    doc = tracer.to_chrome()
    assert validate_chrome_trace(doc) == []
    # worker threads got thread_name metadata from the worker loop
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert any(e["args"]["name"].startswith("repro-serve-")
               for e in meta)


def test_sample_rate_zero_records_no_async_spans(served):
    tracer = Tracer(enabled=True)
    with interp_service(served, sample_rate=0.0,
                      tracer=tracer) as service:
        frame = service.run(served.values, served.input_for(0))
        frame.release()
    assert not frame.timeline().sampled
    assert tracer.async_events() == []


def test_sample_rate_is_deterministic_every_nth(served):
    tracer = Tracer(enabled=True)
    with interp_service(served, sample_rate=0.5,
                      tracer=tracer) as service:
        frames = [service.run(served.values, served.input_for(seed))
                  for seed in range(4)]
        for frame in frames:
            frame.release()
    sampled = [f.timeline().sampled for f in frames]
    assert sampled == [True, False, True, False]


def test_sample_rate_validation(served):
    with pytest.raises(ValueError, match="sample_rate"):
        PipelineService(served.compiled, backend="interpreter",
                        sample_rate=1.5)
