"""Native call-locking regression tests.

The ``.so`` behind a :class:`~repro.codegen.build.NativePipeline` holds
process-global state (scratch-arena slots, instrumentation counters), so
concurrent calls into *one artifact* must serialize — but that lock has
to live with the artifact, not the Python wrapper: two wrappers loaded
from the same cached ``.so`` share the library state, and two different
artifacts share nothing.  These tests pin down both directions, plus the
lock-free fast path for builds with no shared state at all.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import CompileOptions, compile_pipeline
from repro.codegen.build import (
    _artifact_lock, build_native, compiler_available,
)
from tests.serve.conftest import make_served

pytestmark = pytest.mark.skipif(not compiler_available(),
                                reason="no C compiler found")


def test_artifact_lock_registry_keys_on_path(tmp_path):
    a1 = _artifact_lock(tmp_path / "a.so")
    a2 = _artifact_lock(str(tmp_path / "a.so"))
    b = _artifact_lock(tmp_path / "b.so")
    assert a1 is a2  # Path vs str, same artifact -> one lock
    assert a1 is not b


def test_same_artifact_shares_one_lock(served):
    """Two NativePipeline instances of one plan (warm cache, same .so)
    must coordinate through the same lock object."""
    nat1 = build_native(served.compiled.plan, "lockshare")
    nat2 = build_native(served.compiled.plan, "lockshare")
    assert nat1._call_lock is nat2._call_lock


def test_plain_build_is_lock_free():
    """An uninstrumented, arena-free build (base options: no tiling, so
    no scratch) mutates no shared library state and takes no lock."""
    srv = make_served(name="lockfree")
    plain = compile_pipeline(
        srv.compiled.plan.outputs, srv.values, CompileOptions.base(),
        name="lockfree_base")
    nat = build_native(plain.plan, "lockfree_base")
    assert not nat.instrumented
    assert not nat.has_arena
    assert not nat.needs_call_lock


def test_instrumented_build_needs_lock(served):
    nat = build_native(served.compiled.plan, "locked", instrument=True)
    assert nat.instrumented
    assert nat.needs_call_lock


def test_distinct_artifacts_do_not_serialize():
    """Regression: holding artifact A's call lock must not block a call
    into artifact B — per-artifact locks, not a global one."""
    a = make_served(rows=26, cols=28, name="nca")
    b = make_served(rows=24, cols=30, name="ncb")
    nat_a = build_native(a.compiled.plan, "nca")
    nat_b = build_native(b.compiled.plan, "ncb")
    assert nat_a._call_lock is not nat_b._call_lock

    inputs_b = b.input_for(0)
    want_b = b.direct(inputs_b)
    result: dict = {}

    def call_b() -> None:
        result["out"] = nat_b(b.values, inputs_b)[b.out]

    with nat_a._call_lock:  # A "mid-call"
        thread = threading.Thread(target=call_b)
        thread.start()
        thread.join(60)
        assert not thread.is_alive(), \
            "call into artifact B blocked on artifact A's lock"
    assert np.allclose(result["out"], want_b, rtol=1e-5, atol=1e-6)


def test_concurrent_services_on_distinct_pipelines(tmp_path):
    """Two services, two artifacts: native frames flow through both at
    once and every result is correct."""
    from repro.serve import PipelineService

    pipes = [make_served(rows=26, cols=26, name=f"twin{i}")
             for i in range(2)]
    services = [PipelineService(p.compiled, workers=1, backend="auto")
                for p in pipes]
    try:
        for service in services:
            assert service.wait_ready(180) == "native"
        errors: list = []

        def client(srv, p) -> None:
            try:
                for seed in range(4):
                    inputs = p.input_for(seed)
                    with srv.run(p.values, inputs) as frame:
                        assert frame.backend == "native"
                        assert np.allclose(frame.outputs[p.out],
                                           p.direct(inputs),
                                           rtol=1e-5, atol=1e-6)
            except Exception as exc:  # noqa: BLE001 - collected below
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(s, p))
                   for s, p in zip(services, pipes)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        for service in services:
            assert service.stats().native_frames == 4
    finally:
        for service in services:
            service.close()
