"""ShardedService integration: API parity, zero-copy, merged stats.

One 2-worker router (interpreter backend — deterministic and fast on any
box) is shared module-wide; every test feeds it frames and checks one
slice of the contract.  Worker-death fault injection lives in
``test_router_faults.py``; the in-process transport layer in
``test_shm.py``.
"""

from __future__ import annotations

import os
import time
import urllib.request

import numpy as np
import pytest

from repro.codegen.build import compiler_available
from repro.observe.export import validate_exposition_text
from repro.serve import PipelineService, ShardedService
from repro.serve.shm import live_segments

from .conftest import make_served

FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0"))
FUZZ_N = max(2, int(os.environ.get("REPRO_FUZZ_N", "12")) // 3)


@pytest.fixture(scope="module")
def router(served):
    service = ShardedService(served.compiled, workers=2,
                             backend="interpreter", max_queue=32,
                             name="router_t")
    token = service.token
    service.wait_ready(timeout=120)
    yield service
    service.close()
    assert live_segments(token) == [], "segments leaked past close()"


def test_outputs_bit_identical_to_direct(served, router):
    futures, refs = [], []
    for seed in range(6):
        inputs = served.input_for(seed)
        refs.append(served.direct(inputs))
        futures.append(router.submit(served.values, inputs))
    for future, ref in zip(futures, refs):
        with future.result(timeout=120) as frame:
            assert np.array_equal(frame.outputs[served.out], ref)
            assert frame.backend == "interpreter"


def test_frame_timeline_has_worker_marks(served, router):
    with router.run(served.values, served.input_for(99),
                    timeout=120) as frame:
        timeline = frame.timeline()
        kinds = [event.kind for event in timeline.events()]
        assert "submitted" in kinds and "shipped" in kinds
        assert "worker_completed" in kinds, kinds
        assert kinds[-1] == "completed"


def test_outputs_are_shared_memory_views(served, router):
    """The zero-copy regression: pixel data reaches the client as a view
    over the worker's shared pages — never re-materialized by a pickle —
    and the worker never had to stage outputs either."""
    future = router.submit(served.values, served.input_for(7))
    frame = future.result(timeout=120)
    out = frame.outputs[served.out]
    assert router.segment_map.contains(out), \
        "output array is not backed by an attached shm segment"
    frame.release()
    assert router.transport()["copied_out"] == 0, \
        "worker staged output copies on the export path"


def test_lease_input_is_zero_copy(served, router):
    before = router.transport()
    array = router.lease_input((served.rows + 2, served.cols + 2),
                               np.float32)
    rng = np.random.default_rng(123)
    array[...] = rng.random(array.shape, dtype=np.float32)
    ref = served.direct({served.image: array.copy()})
    with router.submit(served.values,
                       {served.image: array}).result(timeout=120) as frame:
        assert np.array_equal(frame.outputs[served.out], ref)
    after = router.transport()
    assert after["leased_inputs"] == before["leased_inputs"] + 1
    assert after["input_copies"] == before["input_copies"], \
        "leased input was re-staged — zero-copy path not taken"


def test_merged_stats_match_thread_service_shape(served, router):
    """stats() must speak the exact ServiceStats dialect of the thread
    service — same fields, same histogram buckets — so dashboards and
    ``render()`` work unchanged."""
    with PipelineService(served.compiled, workers=1,
                         backend="interpreter") as threaded:
        threaded.run(served.values, served.input_for(0)).release()
        thread_dict = threaded.stats().to_dict()
    merged = router.stats()
    merged_dict = merged.to_dict()
    assert set(merged_dict) == set(thread_dict)
    assert set(merged_dict["stages"]) == set(thread_dict["stages"])
    for stage, summary in merged_dict["stages"].items():
        assert set(summary) == set(thread_dict["stages"][stage]), stage
    assert merged.completed >= 6
    assert merged.submitted >= merged.completed
    assert "p50" in merged.render()


def test_shard_stats_sum_to_merged(served, router):
    per_shard = router.shard_stats()
    assert len(per_shard) == 2
    merged = router.stats()
    worker_completed = sum(s.completed for s in per_shard.values())
    # every router-completed frame was completed by exactly one worker
    assert worker_completed >= merged.completed > 0


def test_labeled_prometheus_exposition(served, router):
    server = router.serve_metrics(port=0)
    with urllib.request.urlopen(server.url) as response:
        text = response.read().decode()
    validate_exposition_text(text)
    assert "repro_serve_router_submitted" in text
    assert 'shard="0"' in text and 'shard="1"' in text
    # per-shard histograms keep their le buckets under the shard label
    assert 'le="' in text


def test_sticky_spills_past_coalescing_window(served):
    """Identical frames prefer one shard (coalescing) but must spread
    once its backlog reaches the batch window — a uniform workload on a
    sticky-only router would never scale."""
    with ShardedService(served.compiled, workers=2,
                        backend="interpreter", max_queue=32,
                        max_batch=2, name="spill_t") as service:
        service.wait_ready(timeout=120)
        service.pause()  # freeze workers so backlog is deterministic
        inputs = served.input_for(5)
        futures = [service.submit(served.values, inputs)
                   for _ in range(8)]
        service.resume()
        for future in futures:
            future.result(timeout=120).release()
        per_shard = service.shard_stats()
        busy = [index for index, stats in per_shard.items()
                if stats.submitted > 0]
        assert len(busy) == 2, \
            f"uniform workload stuck to one shard: {per_shard}"


def test_serve_processes_config(served):
    service = served.compiled.serve(processes=1, backend="interpreter",
                                    inner_workers=1)
    try:
        assert isinstance(service, ShardedService)
        with service.run(served.values, served.input_for(1),
                         timeout=120) as frame:
            assert np.array_equal(frame.outputs[served.out],
                                  served.direct(served.input_for(1)))
    finally:
        service.close()
    threaded = served.compiled.serve(backend="interpreter")
    try:
        assert isinstance(threaded, PipelineService)
    finally:
        threaded.close()


def test_autoscaler_grows_and_shrinks(served):
    from repro.serve import AutoscaleConfig

    config = AutoscaleConfig(min_workers=1, max_workers=2,
                             high_watermark=2.0, low_watermark=0.5,
                             up_after=2, down_after=4, interval_s=0.05)
    with ShardedService(served.compiled, workers=1,
                        backend="interpreter", max_queue=64,
                        autoscale=config, name="scale_t") as service:
        service.wait_ready(timeout=120)
        service.pause()  # park a backlog to trip the high watermark
        inputs = served.input_for(6)
        futures = [service.submit(served.values, inputs)
                   for _ in range(8)]
        deadline = time.monotonic() + 60
        while service.workers < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert service.workers == 2, "backlog never tripped a scale-up"
        assert service.transport()["scale_ups"] >= 1
        service.resume()
        for future in futures:
            future.result(timeout=120).release()
        # idle fleet drains back down to min_workers
        deadline = time.monotonic() + 60
        while service.workers > 1 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert service.workers == 1, "idle fleet never scaled down"
        assert service.transport()["scale_downs"] >= 1
        # and the shrunken fleet still serves correctly
        with service.run(served.values, served.input_for(8),
                         timeout=120) as frame:
            assert np.array_equal(frame.outputs[served.out],
                                  served.direct(served.input_for(8)))


def test_differential_fuzz_through_router():
    """Random frames through a 2-worker router vs direct interpreter
    execution; native backend rides along when a compiler is present
    (backend="auto" flips mid-stream, outputs must stay identical)."""
    served = make_served(rows=18, cols=22, tiles=(8, 8), name="rfz")
    backend = "auto" if compiler_available() else "interpreter"
    with ShardedService(served.compiled, workers=2, backend=backend,
                        max_queue=32, name="fuzz_t") as service:
        service.wait_ready(timeout=240)
        rng = np.random.default_rng(FUZZ_SEED)
        for _ in range(FUZZ_N):
            seed = int(rng.integers(0, 2**31))
            inputs = served.input_for(seed)
            ref = served.direct(inputs)
            with service.submit(served.values,
                                inputs).result(timeout=240) as frame:
                assert np.allclose(frame.outputs[served.out], ref,
                                   rtol=1e-5, atol=1e-5), \
                    f"router/{frame.backend} diverged at seed {seed}"
