"""Shared fixtures for the serving-runtime tests: a small two-stage
pipeline that compiles in milliseconds and runs a frame in a few ms, so
stress/fault tests can push dozens of frames without dominating CI."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro import CompileOptions, compile_pipeline
from repro.lang import (
    Case, Condition, Float, Function, Image, Int, Interval, Parameter,
    Variable,
)


@dataclass
class Served:
    """A compiled pipeline plus everything needed to feed it frames."""

    compiled: object
    values: dict
    image: object
    out: str
    rows: int
    cols: int

    def input_for(self, seed: int) -> dict:
        rng = np.random.default_rng(seed)
        data = rng.random((self.rows + 2, self.cols + 2), dtype=np.float32)
        return {self.image: data}

    def direct(self, inputs: dict) -> np.ndarray:
        """Ground truth: one-shot interpreter execution, no service."""
        return self.compiled(self.values, inputs)[self.out]


def make_served(rows: int = 30, cols: int = 34, tiles=(16, 16),
                name: str = "srv") -> Served:
    """Blur + sharpen over a (rows+2, cols+2) image, compiled optimized."""
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    I = Image(Float, [R + 2, C + 2], name=f"{name}_I")
    x, y = Variable("x"), Variable("y")
    row, col = Interval(0, R + 1, 1), Interval(0, C + 1, 1)
    interior = (Condition(x, ">=", 1) & Condition(x, "<=", R)
                & Condition(y, ">=", 1) & Condition(y, "<=", C))

    blur = Function(varDom=([x, y], [row, col]), typ=Float,
                    name=f"{name}_blur")
    blur.defn = [Case(interior,
                      (I(x - 1, y) + I(x, y) + I(x + 1, y)
                       + I(x, y - 1) + I(x, y + 1)) * 0.2)]
    sharp = Function(varDom=([x, y], [row, col]), typ=Float,
                     name=f"{name}_out")
    sharp.defn = [Case(interior,
                       blur(x, y) * 2.0
                       - (blur(x - 1, y) + blur(x + 1, y)) * 0.5)]

    values = {R: rows, C: cols}
    compiled = compile_pipeline([sharp], values,
                                CompileOptions.optimized(tiles), name=name)
    return Served(compiled, values, I, sharp.name, rows, cols)


@pytest.fixture(scope="module")
def served() -> Served:
    return make_served()
