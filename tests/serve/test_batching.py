"""Batched execution and request coalescing.

Three layers under test:

* ``NativePipeline.run_batch`` / ``CompiledPipeline.run_batch`` — the
  multi-frame entry points must be bit-identical to N sequential
  single-frame calls (the whole point of emitting one specialized body
  looped over frames instead of a separate batched schedule);
* ``BoundedQueue`` — the absolute-expiry ``get`` timeout (regression:
  a stolen notify used to restart the clock) and the ``take_while``
  coalescing window;
* ``PipelineService`` — opportunistic coalescing of compatible queued
  requests into one native batch call, with per-member deadlines
  enforced before and after the call, plus the pause-gate deadline
  regression (a paused service used to strand dequeued frames while
  their deadlines burned) and the submitted-counts-accepted-only stats
  fix.

Service-level tests inject a fake batch-capable native via the same
``repro.codegen.build.build_native`` monkeypatch point the fault tests
use, so they run deterministically without a compiler.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.codegen import build as build_mod
from repro.codegen.build import compiler_available
from repro.runtime.buffers import BufferPool
from repro.runtime.executor import execute_plan
from repro.serve import DeadlineExceeded, PipelineService
from repro.serve.queue import BoundedQueue

needs_cc = pytest.mark.skipif(not compiler_available(),
                              reason="no C compiler found")


# ---------------------------------------------------------------------------
# run_batch entry points
# ---------------------------------------------------------------------------

def test_interpreter_run_batch_bit_identical(served):
    frames = [served.input_for(seed) for seed in range(4)]
    seq = [served.compiled(served.values, frame) for frame in frames]
    bat = served.compiled.run_batch(served.values, frames)
    assert len(bat) == len(frames)
    for a, b in zip(seq, bat):
        assert a.keys() == b.keys()
        for key in a:
            assert np.array_equal(a[key], b[key])


def test_interpreter_run_batch_empty(served):
    assert served.compiled.run_batch(served.values, []) == []


@needs_cc
def test_native_run_batch_bit_identical(served):
    native = served.compiled.build()
    assert native.has_batch
    frames = [served.input_for(seed) for seed in range(5)]
    seq = [native(served.values, frame) for frame in frames]
    bat = native.run_batch(served.values, frames)
    for i, (a, b) in enumerate(zip(seq, bat)):
        for key in a:
            assert np.array_equal(a[key], b[key]), f"frame {i}, {key}"


@needs_cc
def test_native_run_batch_degrades_without_batch_symbol(served):
    """Artifacts cached before batch codegen existed lack the symbol;
    run_batch must transparently fall back to sequential calls."""
    native = served.compiled.build()
    frames = [served.input_for(seed) for seed in range(3)]
    want = native.run_batch(served.values, frames)
    native._batch_fn = None  # simulate a pre-batch cached artifact
    assert not native.has_batch
    got = native.run_batch(served.values, frames)
    for a, b in zip(want, got):
        for key in a:
            assert np.array_equal(a[key], b[key])


@needs_cc
def test_native_run_batch_pool_accounting(served):
    """Every output of every frame is leased from the pool; releasing
    them all returns the pool to zero outstanding."""
    native = served.compiled.build()
    pool = BufferPool()
    frames = [served.input_for(seed) for seed in range(3)]
    results = native.run_batch(served.values, frames, pool=pool)
    n_outputs = sum(len({id(a) for a in r.values()}) for r in results)
    assert pool.stats()["outstanding"] == n_outputs
    for result in results:
        pool.release(*{id(a): a for a in result.values()}.values())
    assert pool.stats()["outstanding"] == 0


@needs_cc
def test_native_run_batch_validates_like_single(served):
    native = served.compiled.build()
    good = served.input_for(0)
    bad = {served.image: np.zeros((3, 3), dtype=np.float32)}
    with pytest.raises(ValueError, match="shape"):
        native.run_batch(served.values, [good, bad])
    with pytest.raises(ValueError, match="n_threads"):
        native.run_batch(served.values, [good], n_threads=0)


# ---------------------------------------------------------------------------
# BoundedQueue: timeout budget + coalescing window
# ---------------------------------------------------------------------------

def test_get_timeout_survives_spurious_wakeups():
    """Regression: ``get(timeout)`` used to hand the *full* timeout to
    every ``Condition.wait``, so each wakeup that found the queue empty
    (a stolen notify, a spurious wakeup) restarted the clock and the
    call could block far past its budget.  A waker that repeatedly
    notifies the condition without enqueuing anything must not extend
    the wait."""
    queue = BoundedQueue(4)
    stop = threading.Event()

    def waker() -> None:
        # bounded so the broken (clock-restarting) implementation makes
        # the test fail on elapsed time instead of hanging forever
        for _ in range(60):
            if stop.is_set():
                return
            with queue._lock:
                queue._not_empty.notify_all()
            time.sleep(0.02)

    thread = threading.Thread(target=waker)
    thread.start()
    try:
        start = time.monotonic()
        with pytest.raises(TimeoutError):
            queue.get(timeout=0.25)
        elapsed = time.monotonic() - start
    finally:
        stop.set()
        thread.join()
    assert 0.2 <= elapsed < 1.0, elapsed


def test_get_timeout_bounded_under_competing_consumers():
    """Multi-consumer variant: sibling consumers racing for every item
    may steal the victim's notifies, but the victim's call still returns
    (item or TimeoutError) within its budget plus scheduling slack."""
    queue = BoundedQueue(8)
    stop = threading.Event()
    budget = 0.3

    def thief() -> None:
        while not stop.is_set():
            try:
                queue.get(timeout=0.005)
            except TimeoutError:
                pass

    thieves = [threading.Thread(target=thief) for _ in range(2)]
    for thread in thieves:
        thread.start()

    def producer() -> None:
        for _ in range(12):
            if stop.is_set():
                return
            try:
                queue.put(object())
            except Exception:
                pass
            time.sleep(0.07)

    feeder = threading.Thread(target=producer)
    feeder.start()
    try:
        start = time.monotonic()
        try:
            queue.get(timeout=budget)
        except TimeoutError:
            pass
        elapsed = time.monotonic() - start
    finally:
        stop.set()
        feeder.join()
        for thread in thieves:
            thread.join()
    assert elapsed < budget + 0.4, elapsed


def test_get_zero_timeout_on_empty_queue_returns_immediately():
    queue = BoundedQueue(2)
    start = time.monotonic()
    with pytest.raises(TimeoutError):
        queue.get(timeout=0.0)
    assert time.monotonic() - start < 0.1


def test_take_while_pops_matching_head_run_only():
    queue = BoundedQueue(8)
    for item in [2, 4, 6, 7, 8]:
        queue.put(item)
    head = queue.get()
    assert head == 2
    taken = queue.take_while(lambda n: n % 2 == 0, max_n=8)
    # stops at the first mismatch; 8 stays queued behind 7
    assert taken == [4, 6]
    assert len(queue) == 2


def test_take_while_respects_max_n_and_empty_queue():
    queue = BoundedQueue(8)
    assert queue.take_while(lambda _: True, max_n=4) == []
    for item in range(5):
        queue.put(item)
    taken = queue.take_while(lambda _: True, max_n=3)
    assert taken == [0, 1]  # the worker already holds one: max_n - 1
    assert len(queue) == 3


# ---------------------------------------------------------------------------
# Service-level coalescing (fake batch-capable native)
# ---------------------------------------------------------------------------

class BatchNative:
    """Batch-capable native stand-in: interpreter semantics, call log."""

    has_batch = True

    def __init__(self, plan, delay_first: float = 0.0):
        self.plan = plan
        self.calls: list[int] = []  # frames per dispatch
        self._delay_first = delay_first

    def __call__(self, params, inputs, *, n_threads=1, tracer=None,
                 pool=None):
        if self._delay_first and not self.calls:
            self.calls.append(1)
            time.sleep(self._delay_first)
        else:
            self.calls.append(1)
        return execute_plan(self.plan, params, inputs, out_pool=pool)

    def run_batch(self, params, inputs_list, *, n_threads=1, tracer=None,
                  pool=None):
        self.calls.append(len(inputs_list))
        return [execute_plan(self.plan, params, inputs, out_pool=pool)
                for inputs in inputs_list]


def batch_service(served, monkeypatch, **kw):
    native = BatchNative(served.compiled.plan,
                         delay_first=kw.pop("delay_first", 0.0))
    monkeypatch.setattr(build_mod, "build_native",
                        lambda plan, name="pipeline", **k: native)
    kw.setdefault("workers", 1)
    service = PipelineService(served.compiled, backend="auto", **kw)
    assert service.wait_ready(30) == "native"
    return service, native


def test_service_coalesces_compatible_requests(served, monkeypatch):
    service, native = batch_service(served, monkeypatch)
    with service:
        service.pause()
        inputs = [served.input_for(seed) for seed in range(4)]
        futures = [service.submit(served.values, frame)
                   for frame in inputs]
        service.resume()
        for future, frame_in in zip(futures, inputs):
            with future.result(30) as frame:
                assert frame.backend == "native"
                assert np.array_equal(frame.outputs[served.out],
                                      served.direct(frame_in))
        stats = service.stats()
    # at least one dispatch carried >= 2 frames through run_batch
    assert max(native.calls) >= 2
    assert stats.batches >= 1
    assert stats.batched_frames >= 2
    assert stats.mean_batch_size > 1.0
    assert stats.completed == 4 and stats.native_frames == 4
    assert stats.as_dict()["batched_frames"] == stats.batched_frames
    assert "batches" in stats.render()


def test_incompatible_params_split_the_batch(served, monkeypatch):
    """A request with different parameter values fences the coalescing
    window — FIFO order is preserved, nothing jumps the fence."""
    service, native = batch_service(served, monkeypatch)
    other_values = dict(served.values)
    (first_param, first_value), *_ = other_values.items()
    other_values[first_param] = first_value - 1
    rng = np.random.default_rng(99)
    other_input = {served.image: rng.random(
        (served.rows + 1, served.cols + 2), dtype=np.float32)}
    with service:
        service.pause()
        same = [service.submit(served.values, served.input_for(seed))
                for seed in range(3)]
        fence = service.submit(other_values, other_input)
        tail = service.submit(served.values, served.input_for(7))
        service.resume()
        for future in [*same, fence, tail]:
            future.result(30).release()
        stats = service.stats()
    # the three compatible head requests batched; the fence and the
    # request behind it ran alone
    assert 3 in native.calls
    assert stats.batched_frames == 3 and stats.batches == 1
    assert stats.completed == 5


def test_max_batch_caps_the_window(served, monkeypatch):
    service, native = batch_service(served, monkeypatch, max_batch=2)
    with service:
        service.pause()
        futures = [service.submit(served.values, served.input_for(seed))
                   for seed in range(5)]
        service.resume()
        for future in futures:
            future.result(30).release()
    assert max(native.calls) <= 2


def test_coalesce_false_disables_batching(served, monkeypatch):
    service, native = batch_service(served, monkeypatch, coalesce=False)
    with service:
        service.pause()
        futures = [service.submit(served.values, served.input_for(seed))
                   for seed in range(4)]
        service.resume()
        for future in futures:
            future.result(30).release()
        stats = service.stats()
    assert max(native.calls) == 1
    assert stats.batches == 0 and stats.batched_frames == 0
    assert stats.mean_batch_size == 0.0


class LateAfterBatch:
    """Deadline double: alive at the pre-call check, expired afterwards."""

    def __init__(self):
        self._checks = 0

    def check(self, where=""):
        pass

    def expired(self):
        self._checks += 1
        return self._checks > 1

    def remaining(self):
        return 1.0 if self._checks <= 1 else -0.001


def test_late_batch_member_dropped_individually(served, monkeypatch):
    """One slow batch must not let a late member slide: its future fails
    with DeadlineExceeded, its buffers go back to the pool, and every
    punctual member still completes."""
    service, native = batch_service(served, monkeypatch)
    with service:
        service.pause()
        punctual = [service.submit(served.values, served.input_for(seed))
                    for seed in range(2)]
        late = service.submit(served.values, served.input_for(5),
                              deadline=LateAfterBatch())
        service.resume()
        for future in punctual:
            future.result(30).release()
        with pytest.raises(DeadlineExceeded) as err:
            late.result(30)
        stats = service.stats()
    assert "after batched native call" in str(err.value)
    assert 3 in native.calls  # all three went through one batch
    assert stats.timeouts == 1 and stats.completed == 2
    assert stats.pool["outstanding"] == 0


def test_interpreter_service_never_batches(served):
    """Without a native artifact the coalescing window stays shut —
    interpreter batching would serialize frames workers could overlap."""
    with PipelineService(served.compiled, backend="interpreter",
                         workers=1) as service:
        service.pause()
        futures = [service.submit(served.values, served.input_for(seed))
                   for seed in range(3)]
        service.resume()
        for future in futures:
            future.result(30).release()
        stats = service.stats()
    assert stats.batches == 0 and stats.batched_frames == 0
    assert stats.interp_frames == 3


# ---------------------------------------------------------------------------
# Pause-gate deadline regression
# ---------------------------------------------------------------------------

def test_paused_gate_fails_dequeued_frame_within_deadline(served):
    """Regression: a worker that dequeued a request and then found the
    service paused used to block on the bare gate while the request's
    deadline silently burned — the caller only learned on resume.  The
    gated wait is now bounded by the deadline and the future fails
    promptly, while the service is still paused."""
    with PipelineService(served.compiled, backend="interpreter",
                         workers=1) as service:
        # make sure the worker is parked inside queue.get (past the
        # top-of-loop gate check) before pausing
        service.run(served.values, served.input_for(0)).release()
        time.sleep(0.1)
        service.pause()
        future = service.submit(served.values, served.input_for(1),
                                deadline_s=0.25)
        start = time.monotonic()
        with pytest.raises(DeadlineExceeded) as err:
            future.result(5)
        elapsed = time.monotonic() - start
        assert service.paused  # failed while paused, not on resume
        stats = service.stats()
        service.resume()
    assert "paused at gate" in str(err.value)
    assert elapsed < 2.0
    assert stats.timeouts == 1 and stats.completed == 1


def test_pause_resume_without_deadline_still_works(served):
    """The gate fix must not change the deadline-free contract: paused
    frames simply wait for resume."""
    with PipelineService(served.compiled, backend="interpreter",
                         workers=1) as service:
        service.run(served.values, served.input_for(0)).release()
        time.sleep(0.05)
        service.pause()
        future = service.submit(served.values, served.input_for(1))
        time.sleep(0.2)
        assert not future.done()
        service.resume()
        future.result(30).release()


# ---------------------------------------------------------------------------
# submitted counts accepted enqueues only
# ---------------------------------------------------------------------------

def test_rejected_submissions_do_not_inflate_submitted(served):
    """Regression: ``submitted`` was incremented before the enqueue
    attempt, so every rejection bumped both ``submitted`` and
    ``rejected`` and completed/submitted undercounted accepted
    throughput.  Now submitted == accepted, and the rejection rate is
    rejected over everything offered."""
    max_queue, workers = 2, 1
    with PipelineService(served.compiled, backend="interpreter",
                         workers=workers, max_queue=max_queue) as service:
        service.pause()
        accepted, rejected = [], 0
        for seed in range(max_queue + workers + 3):
            try:
                accepted.append(
                    service.submit(served.values, served.input_for(seed)))
            except Exception:
                rejected += 1
        assert rejected >= 1
        service.resume()
        for future in accepted:
            future.result(30).release()
        stats = service.stats()
    assert stats.submitted == len(accepted)
    assert stats.accepted == stats.submitted
    assert stats.rejected == rejected
    assert stats.completed == stats.submitted
    assert stats.rejection_rate == pytest.approx(
        rejected / (len(accepted) + rejected))
