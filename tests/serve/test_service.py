"""PipelineService basics: submission, results, stats, pooling, lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codegen.build import compiler_available
from repro.serve import (
    DeadlineExceeded, Frame, PipelineService, ServiceClosed,
)


def interp_service(served, **kw):
    kw.setdefault("workers", 1)
    return PipelineService(served.compiled, backend="interpreter", **kw)


def test_submit_matches_direct_execution(served):
    inputs = served.input_for(3)
    want = served.direct(inputs)
    with interp_service(served) as service:
        with service.submit(served.values, inputs).result(30) as frame:
            assert frame.backend == "interpreter"
            assert frame.latency_s >= 0.0
            assert np.array_equal(frame.outputs[served.out], want)


def test_run_convenience_and_stats_counters(served):
    with interp_service(served) as service:
        for seed in range(3):
            with service.run(served.values, served.input_for(seed)):
                pass
        stats = service.stats()
    assert stats.submitted == 3
    assert stats.completed == 3
    assert stats.interp_frames == 3
    assert stats.native_frames == 0
    assert stats.rejected == stats.timeouts == stats.failures == 0
    assert stats.backend == "interpreter"
    assert stats.latency["count"] == 3
    assert stats.latency["p99_ms"] >= stats.latency["p50_ms"] > 0.0
    assert stats.native_rate == 0.0 and stats.rejection_rate == 0.0
    # snapshot round-trips and renders without blowing up
    assert stats.as_dict()["completed"] == 3
    assert "interpreter" in stats.render()


def test_frame_release_is_idempotent(served):
    with interp_service(served) as service:
        frame = service.run(served.values, served.input_for(1))
        leased_before = service.stats().pool["outstanding"]
        frame.release()
        frame.release()  # second release must not double-free
        frame.release()
        leased_after = service.stats().pool["outstanding"]
    assert leased_after < leased_before
    # the pool got each output back exactly once
    assert leased_after == leased_before - len({
        id(a) for a in frame.outputs.values()})


def test_pool_reaches_full_hit_rate_in_steady_state(served):
    with interp_service(served) as service:
        # warmup: first frame allocates, release hands everything back
        service.run(served.values, served.input_for(0)).release()
        base = service.stats().pool
        for seed in range(1, 6):
            frame = service.run(served.values, served.input_for(seed))
            got = frame.outputs[served.out].copy()
            frame.release()
            assert np.array_equal(got, served.direct(served.input_for(seed)))
        steady = service.stats().pool
    # steady-state serving allocates nothing: hits grew, misses did not
    assert steady["misses"] == base["misses"]
    assert steady["hits"] > base["hits"]
    assert steady["outstanding"] == 0


def test_unpooled_service_serves_plain_arrays(served):
    with interp_service(served, pool=False) as service:
        frame = service.run(served.values, served.input_for(2))
        frame.release()  # no pool: must be a harmless no-op
        assert np.array_equal(frame.outputs[served.out],
                              served.direct(served.input_for(2)))
        assert service.stats().pool == {}


def test_expired_deadline_times_out_in_queue(served):
    with interp_service(served) as service:
        future = service.submit(served.values, served.input_for(0),
                                deadline_s=0.0)
        with pytest.raises(DeadlineExceeded) as err:
            future.result(30)
        assert "queue wait" in str(err.value)
        stats = service.stats()
    assert stats.timeouts == 1
    assert stats.completed == 0
    assert stats.timeout_rate == 1.0


def test_default_deadline_applies_to_submissions(served):
    with interp_service(served, default_deadline_s=0.0) as service:
        with pytest.raises(DeadlineExceeded):
            service.submit(served.values, served.input_for(0)).result(30)
        # per-call deadline overrides the default
        frame = service.run(served.values, served.input_for(0),
                            deadline_s=60.0)
        frame.release()
    assert frame.backend == "interpreter"


def test_close_rejects_new_submissions(served):
    service = interp_service(served)
    service.run(served.values, served.input_for(0)).release()
    service.close()
    assert service.closed
    with pytest.raises(ServiceClosed):
        service.submit(served.values, served.input_for(1))
    assert service.stats().rejected == 1
    service.close()  # idempotent


def test_pause_resume(served):
    with interp_service(served) as service:
        assert not service.paused
        service.pause()
        assert service.paused
        future = service.submit(served.values, served.input_for(0))
        assert not future.done()
        service.resume()
        future.result(30).release()
    assert not service.paused


def test_validation_errors():
    class Dummy:
        plan = None
        name = "d"

    with pytest.raises(ValueError, match="backend"):
        PipelineService(Dummy(), backend="gpu")
    with pytest.raises(ValueError, match="workers"):
        PipelineService(Dummy(), backend="interpreter", workers=0)


def test_compiled_pipeline_serve_entrypoint(served):
    with served.compiled.serve(backend="interpreter", workers=1) as service:
        assert service.name == served.compiled.name
        assert "PipelineService" in repr(service)
        service.run(served.values, served.input_for(4)).release()
    assert service.stats().completed == 1


@pytest.mark.skipif(not compiler_available(), reason="no C compiler found")
def test_auto_backend_switches_to_native(served):
    inputs = served.input_for(5)
    want = served.direct(inputs)
    with PipelineService(served.compiled, workers=1,
                         backend="auto") as service:
        assert service.wait_ready(180) == "native"
        frame = service.run(served.values, inputs)
        assert frame.backend == "native"
        assert np.allclose(frame.outputs[served.out], want,
                           rtol=1e-5, atol=1e-6)
        frame.release()
        stats = service.stats()
        assert stats.native_frames == 1
        assert stats.fallbacks == {}
        # release() drops idle pool buffers + arenas and stays servable
        service.release()
        service.run(served.values, inputs).release()
