"""Worker-death fault injection for the process-sharded router.

The contract under test (ISSUE acceptance): kill -9 a worker mid-burst
and (a) the router detects the death and respawns the shard, (b) every
in-flight frame resolves — requeued onto a live shard or failed with
:class:`WorkerCrashed` — never hangs, (c) post-recovery outputs are
bit-identical to direct execution, and (d) the dead worker's
shared-memory segments are reaped, with zero segments left after
``close()``.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.serve import ShardedService, WorkerCrashed
from repro.serve.shm import live_segments


def wait_until(predicate, timeout: float = 30.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def resolve(future, timeout: float = 120.0):
    """Frame-or-WorkerCrashed; anything else (including a hang past the
    timeout) is a contract violation."""
    try:
        return future.result(timeout=timeout)
    except WorkerCrashed:
        return None


@pytest.fixture
def router(served):
    service = ShardedService(served.compiled, workers=2,
                             backend="interpreter", max_queue=64,
                             max_retries=1, name="fault_t")
    token = service.token
    service.wait_ready(timeout=120)
    yield service
    service.close()
    assert live_segments(token) == [], "segments leaked past close()"


def _shard_with_pending(service):
    with service._lock:
        for shard in service._shards.values():
            if shard.alive and shard.pending:
                return shard
    return None


def test_kill9_paused_backlog_requeues(served, router):
    """Deterministic variant: freeze the workers so the backlog is
    parked on the shards, SIGKILL one, and demand every frame still
    resolves (requeued to the survivor — the retry budget covers one
    death)."""
    router.pause()
    inputs = served.input_for(1)
    ref = served.direct(inputs)
    futures = [router.submit(served.values, inputs) for _ in range(8)]
    victim = _shard_with_pending(router)
    assert victim is not None, "paused submits left no pending frames"
    victim_segments = set(victim.segments)
    os.kill(victim.handle.pid, signal.SIGKILL)

    assert wait_until(
        lambda: router.transport()["worker_deaths"] >= 1), \
        "router never noticed the SIGKILL"
    router.resume()

    frames = [resolve(f) for f in futures]
    completed = [f for f in frames if f is not None]
    assert len(completed) == len(futures), \
        "frames on the dead shard had retry budget — none may fail"
    for frame in completed:
        assert np.array_equal(frame.outputs[served.out], ref)
        frame.release()

    transport = router.transport()
    assert transport["worker_deaths"] == 1
    assert transport["respawns"] >= 1
    assert transport["requeued"] >= 1, "no frame took the requeue path"
    # the dead worker's announced slabs must have been reaped
    live = set(live_segments(router.token))
    assert not (victim_segments & live), \
        f"dead worker's segments leaked: {victim_segments & live}"
    assert wait_until(lambda: router.workers == 2), \
        "dead shard was never respawned"


def test_kill9_mid_burst_never_hangs(served, router):
    """Realistic variant: SIGKILL while frames are actively executing.
    Frames may resolve either way (a frame already inside the dying
    worker has no checkpoint), but every future must resolve and the
    fleet must recover to bit-identical service."""
    inputs = served.input_for(2)
    ref = served.direct(inputs)
    futures = [router.submit(served.values, inputs) for _ in range(12)]
    with router._lock:
        pids = [s.handle.pid for s in router._shards.values() if s.alive]
    os.kill(pids[0], signal.SIGKILL)

    frames = [resolve(f) for f in futures]
    for frame in frames:
        if frame is not None:
            assert np.array_equal(frame.outputs[served.out], ref)
            frame.release()
    assert wait_until(
        lambda: router.transport()["worker_deaths"] >= 1)
    assert wait_until(lambda: router.workers == 2), \
        "fleet did not recover to full strength"

    # post-recovery: fresh frames, bit-identical, on both shards
    fresh = [router.submit(served.values, served.input_for(seed))
             for seed in (10, 11, 12, 13)]
    for seed, future in zip((10, 11, 12, 13), fresh):
        with future.result(timeout=120) as frame:
            assert np.array_equal(
                frame.outputs[served.out],
                served.direct(served.input_for(seed)))


def test_retry_budget_exhaustion_fails_cleanly(served):
    """With max_retries=0 a death converts the shard's in-flight frames
    into WorkerCrashed — quickly and loudly, never a hang."""
    service = ShardedService(served.compiled, workers=1,
                             backend="interpreter", max_queue=32,
                             max_retries=0, name="budget_t")
    token = service.token
    try:
        service.wait_ready(timeout=120)
        service.pause()
        futures = [service.submit(served.values, served.input_for(3))
                   for _ in range(4)]
        with service._lock:
            pid = next(iter(service._shards.values())).handle.pid
        os.kill(pid, signal.SIGKILL)
        failures = 0
        for future in futures:
            try:
                frame = future.result(timeout=120)
                frame.release()
            except WorkerCrashed:
                failures += 1
        assert failures == len(futures), \
            "max_retries=0 must fail every in-flight frame"
        # the service is still usable on the respawned worker
        assert wait_until(lambda: service.workers == 1)
        service.resume()
        with service.run(served.values, served.input_for(4),
                         timeout=120) as frame:
            assert np.array_equal(frame.outputs[served.out],
                                  served.direct(served.input_for(4)))
    finally:
        service.close()
    assert live_segments(token) == []
