"""Fault injection: broken builds, broken loads, broken native calls,
mid-execution deadlines.  Each fault must degrade the service — never
wedge it — with the degradation visible in ``service.stats()``.

The injection point is ``repro.codegen.build.build_native``: the
background :class:`~repro.codegen.build.AsyncBuild` resolves it as a
module global precisely so these tests can monkeypatch it.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.codegen import build as build_mod
from repro.codegen.build import BuildError
from repro.runtime.buffers import BufferPool
from repro.runtime.executor import execute_plan
from repro.serve import DeadlineExceeded, PipelineService


def make_service(served, **kw):
    kw.setdefault("workers", 1)
    return PipelineService(served.compiled, backend="auto", **kw)


def test_build_failure_falls_back_to_interpreter(served, monkeypatch):
    def gcc_explodes(plan, name="pipeline", **kwargs):
        raise BuildError("injected: cc1 segfault")

    monkeypatch.setattr(build_mod, "build_native", gcc_explodes)
    with make_service(served) as service:
        assert service.wait_ready(30) == "interpreter"
        # frames are still served, by the interpreter
        inputs = served.input_for(0)
        with service.run(served.values, inputs) as frame:
            assert frame.backend == "interpreter"
            assert np.array_equal(frame.outputs[served.out],
                                  served.direct(inputs))
        stats = service.stats()
    assert stats.backend == "interpreter"
    assert stats.fallbacks == {"build_failed": 1}
    assert stats.completed == 1 and stats.interp_frames == 1


def test_load_failure_falls_back_to_interpreter(served, monkeypatch):
    def dlopen_explodes(plan, name="pipeline", **kwargs):
        raise OSError("injected: cannot load shared object")

    monkeypatch.setattr(build_mod, "build_native", dlopen_explodes)
    with make_service(served) as service:
        assert service.wait_ready(30) == "interpreter"
        service.run(served.values, served.input_for(1)).release()
        stats = service.stats()
    assert stats.fallbacks == {"load_failed": 1}
    assert stats.completed == 1


class FlakyNative:
    """Stand-in native pipeline that raises on every call."""

    def __init__(self):
        self.calls = 0

    def __call__(self, params, inputs, *, n_threads=1, tracer=None,
                 pool=None):
        self.calls += 1
        raise RuntimeError(f"injected native crash #{self.calls}")


def test_native_errors_reserve_frame_then_demote(served, monkeypatch):
    """Each native error re-serves the frame via the interpreter (caller
    still gets a correct result); after max_native_errors consecutive
    errors the backend is demoted for good."""
    flaky = FlakyNative()
    monkeypatch.setattr(build_mod, "build_native",
                        lambda plan, name="pipeline", **kw: flaky)
    with make_service(served, max_native_errors=2) as service:
        assert service.wait_ready(30) == "native"
        for seed in range(3):
            inputs = served.input_for(seed)
            with service.run(served.values, inputs) as frame:
                assert frame.backend == "interpreter"
                assert np.array_equal(frame.outputs[served.out],
                                      served.direct(inputs))
        stats = service.stats()
    # frames 1-2 hit the flaky native and fell back; frame 3 went
    # straight to the interpreter because the backend was demoted
    assert flaky.calls == 2
    assert stats.backend == "interpreter"
    assert stats.fallbacks == {"native_error": 2, "demoted": 1}
    assert stats.completed == 3 and stats.interp_frames == 3
    assert stats.failures == 0


class LateNative:
    """Native stand-in whose deadline is already blown when it returns."""

    def __init__(self, out_name, shape):
        self.out_name = out_name
        self.shape = shape

    def __call__(self, params, inputs, *, n_threads=1, tracer=None,
                 pool=None):
        out = (pool.acquire(self.shape, np.float32) if pool is not None
               else np.zeros(self.shape, dtype=np.float32))
        return {self.out_name: out}


class ExpiredAfterCall:
    """Deadline double: passes every check, reads as expired afterwards."""

    def check(self, where=""):
        pass

    def expired(self):
        return True

    def remaining(self):
        return -0.001


def test_late_native_frame_is_dropped_and_buffers_recycled(served,
                                                           monkeypatch):
    shape = (served.rows + 2, served.cols + 2)
    monkeypatch.setattr(
        build_mod, "build_native",
        lambda plan, name="pipeline", **kw: LateNative(served.out, shape))
    with make_service(served) as service:
        assert service.wait_ready(30) == "native"
        future = service.submit(served.values, served.input_for(0),
                                deadline=ExpiredAfterCall())
        with pytest.raises(DeadlineExceeded) as err:
            future.result(30)
        assert "after native call" in str(err.value)
        stats = service.stats()
    assert stats.timeouts == 1
    # the late frame's output buffer went straight back to the pool
    assert stats.pool["outstanding"] == 0


class TripAt:
    """Deadline double that fires at the first checkpoint whose name
    contains ``needle`` — deterministic mid-execution timeout."""

    def __init__(self, needle):
        self.needle = needle
        self.seen = []

    def check(self, where=""):
        self.seen.append(where)
        if self.needle in where:
            raise DeadlineExceeded(where, 0.001)

    def expired(self):
        return False

    def remaining(self):
        return 1.0


def test_deadline_enforced_at_group_boundaries(served):
    """The interpreter abandons a frame at the cooperative checkpoint
    inside execution — not merely on queue wait — and the timeout is
    attributed to the group that blew the budget."""
    trip = TripAt("group")
    with PipelineService(served.compiled, backend="interpreter",
                         workers=1) as service:
        future = service.submit(served.values, served.input_for(0),
                                deadline=trip)
        with pytest.raises(DeadlineExceeded) as err:
            future.result(30)
        stats = service.stats()
    assert "group" in err.value.where
    assert "queue wait" in trip.seen  # the earlier checkpoint did run
    assert stats.timeouts == 1 and stats.failures == 0
    # all pooled buffers acquired by the doomed frame were handed back
    assert stats.pool["outstanding"] == 0


class TripOneTileDawdleRest:
    """Deadline double for the threaded tile path: the first tile to hit
    its checkpoint trips; every later tile dawdles before running, so it
    is still writing when the exception reaches ``execute_plan`` unless
    the executor waits out its stragglers."""

    def __init__(self, dawdle_s: float):
        self.dawdle_s = dawdle_s
        self._lock = threading.Lock()
        self._tripped = False

    def check(self, where=""):
        if not where.startswith("tile"):
            return
        with self._lock:
            first = not self._tripped
            self._tripped = True
        if first:
            raise DeadlineExceeded(where, 0.001)
        time.sleep(self.dawdle_s)

    def expired(self):
        return False

    def remaining(self):
        return 1.0


def test_threaded_tile_abort_waits_for_straggler_tiles(served):
    """When a tiled group aborts mid-flight with n_threads > 1, sibling
    tiles must finish (or never start) before execute_plan releases the
    frame's pooled buffers — a straggler writing after the release would
    silently corrupt whichever frame leases those arrays next."""
    pool = BufferPool()
    with pytest.raises(DeadlineExceeded):
        execute_plan(served.compiled.plan, served.values,
                     served.input_for(0), n_threads=4,
                     deadline=TripOneTileDawdleRest(0.1), out_pool=pool)
    # the doomed frame handed every acquired array back ...
    assert pool.stats()["outstanding"] == 0
    # ... and no straggler tile is still writing into them: stamp the
    # idle arrays as the next frame would, then verify the stamps
    # outlive any tile that was dawdling at abort time
    idle = [a for bucket in pool._free.values() for a in bucket]
    assert idle
    for array in idle:
        array.fill(-7.0)
    time.sleep(0.25)
    for array in idle:
        assert np.all(array == -7.0)


def test_service_survives_faults_and_closes_cleanly(served, monkeypatch):
    def gcc_explodes(plan, name="pipeline", **kwargs):
        raise BuildError("injected")

    monkeypatch.setattr(build_mod, "build_native", gcc_explodes)
    service = make_service(served)
    service.wait_ready(30)
    for seed in range(3):
        service.run(served.values, served.input_for(seed)).release()
    service.close()
    assert service.closed
    for worker in service._workers:
        assert not worker.is_alive()
