"""Tests for the persistent schedule store: content digests, machine
fingerprints, atomic publish/lookup, and the build/autotune fast paths."""

import json

import numpy as np
import pytest

from repro.apps import iunsharp
from repro.apps.harris import build_pipeline as build_harris
from repro.autotune.tuner import TuneConfig, autotune
from repro.codegen.build import build_native, compiler_available
from repro.compiler.options import CompileOptions
from repro.compiler.plan import compile_plan
from repro.schedule.store import (
    STORE_VERSION, ScheduleStore, StoredSchedule, canonical_pipeline_dump,
    fingerprint_digest, machine_fingerprint, pipeline_digest,
)

needs_cc = pytest.mark.skipif(not compiler_available(),
                              reason="no C compiler available")


def _iunsharp():
    app = iunsharp.build_pipeline()
    values = {app.params["R"]: 48, app.params["C"]: 40}
    return app, values


# -- pipeline content digest -------------------------------------------------

def test_digest_stable_across_independent_builds():
    # two builds mint fresh auto-named DSL variables; the canonical
    # dump renames them positionally so the digests agree
    app_a, values_a = _iunsharp()
    app_b, values_b = _iunsharp()
    assert pipeline_digest(app_a.outputs, values_a) == \
        pipeline_digest(app_b.outputs, values_b)
    assert canonical_pipeline_dump(app_a.outputs, values_a) == \
        canonical_pipeline_dump(app_b.outputs, values_b)


def test_digest_sensitive_to_estimates_and_structure():
    app, values = _iunsharp()
    base = pipeline_digest(app.outputs, values)
    bigger = {app.params["R"]: 96, app.params["C"]: 40}
    assert pipeline_digest(app.outputs, bigger) != base

    harris = build_harris()
    hv = {harris.params["R"]: 48, harris.params["C"]: 40}
    assert pipeline_digest(harris.outputs, hv) != base


def test_digest_shape():
    app, values = _iunsharp()
    digest = pipeline_digest(app.outputs, values)
    assert len(digest) == 32
    assert int(digest, 16) >= 0  # hex


# -- machine fingerprint -----------------------------------------------------

def test_fingerprint_digest_tracks_content():
    fp = machine_fingerprint()
    assert {"cpus", "machine", "system", "compiler", "flags"} <= set(fp)
    assert fingerprint_digest(fp) == fingerprint_digest(dict(fp))
    other = dict(fp, cpus=fp["cpus"] + 1)
    assert fingerprint_digest(other) != fingerprint_digest(fp)


# -- StoredSchedule ----------------------------------------------------------

def _entry(pipeline="a" * 32, fingerprint=None, **kw):
    return StoredSchedule(
        pipeline=pipeline,
        fingerprint=fingerprint or machine_fingerprint(),
        options=CompileOptions.optimized((16, 16)).to_dict(),
        **kw)


def test_stored_schedule_round_trip():
    entry = _entry(hints={"force_group": [["a", "b"]]},
                   tune_result={"tile_sizes": [16, 16],
                                "overlap_threshold": 0.4,
                                "time_parallel_ms": 1.5},
                   artifact={"key": "k", "vectorize": True,
                             "instrument": False},
                   created=123.0)
    again = StoredSchedule.from_dict(entry.to_dict())
    assert again == entry
    assert again.compile_options() == CompileOptions.optimized((16, 16))

    bare = StoredSchedule.from_dict(_entry().to_dict())
    assert bare.hints is None and bare.tune_result is None
    assert bare.schedule_hints() is None


# -- publish / lookup --------------------------------------------------------

def test_publish_lookup_round_trip(tmp_path):
    store = ScheduleStore(tmp_path)
    fp = machine_fingerprint()
    assert store.lookup("a" * 32, fp) is None
    path = store.publish(_entry())
    assert path.parent == tmp_path
    found = store.lookup("a" * 32, fp)
    assert found is not None
    assert found.created > 0  # publish stamps a missing timestamp
    # atomic publish leaves no temporaries behind
    assert not list(tmp_path.glob(".*.tmp"))


def test_lookup_rejects_fingerprint_mismatch(tmp_path):
    # a file at the *right path* whose embedded fingerprint differs
    # (stale digest scheme, hand-copied store, ...) must be skipped
    store = ScheduleStore(tmp_path)
    fp = machine_fingerprint()
    entry = _entry(fingerprint=dict(fp, cpus=fp["cpus"] + 1))
    path = store.path_for("a" * 32, fp)
    path.write_text(json.dumps(entry.to_dict()))
    assert store.lookup("a" * 32, fp) is None
    # published under its own fingerprint it lands at a different path
    assert store.publish(entry) != path


def test_lookup_rejects_version_and_pipeline_mismatch(tmp_path):
    store = ScheduleStore(tmp_path)
    fp = machine_fingerprint()
    store.publish(_entry(version=STORE_VERSION + 1))
    assert store.lookup("a" * 32, fp) is None

    doc = _entry().to_dict()
    doc["pipeline"] = "b" * 32  # body disagrees with the file name
    store.path_for("a" * 32, fp).write_text(json.dumps(doc))
    assert store.lookup("a" * 32, fp) is None


def test_lookup_tolerates_corrupt_files(tmp_path):
    store = ScheduleStore(tmp_path)
    fp = machine_fingerprint()
    store.path_for("a" * 32, fp).write_text("{definitely not json")
    assert store.lookup("a" * 32, fp) is None
    assert store.entries() == []


def test_last_writer_wins(tmp_path):
    store = ScheduleStore(tmp_path)
    store.publish(_entry(created=1.0))
    store.publish(_entry(created=2.0))
    found = store.lookup("a" * 32, machine_fingerprint())
    assert found.created == 2.0
    assert len(store.entries()) == 1


def test_manifest_and_clear(tmp_path):
    store = ScheduleStore(tmp_path)
    store.publish(_entry(tune_result={"tile_sizes": [16, 16],
                                      "overlap_threshold": 0.4,
                                      "time_parallel_ms": 2.5}))
    store.publish(_entry(pipeline="b" * 32,
                         hints={"force_group": [["a", "b"]]}))
    manifest = store.manifest()
    assert manifest["root"] == str(tmp_path)
    assert len(manifest["entries"]) == 2
    by_pipe = {e["pipeline"]: e for e in manifest["entries"]}
    assert by_pipe["a" * 32]["tuned_ms"] == 2.5
    assert by_pipe["b" * 32]["hinted"] is True
    assert store.clear() == 2
    assert store.entries() == []


# -- build_native integration ------------------------------------------------

def _plan():
    app, values = _iunsharp()
    return app, values, compile_plan(app.outputs, values,
                                     CompileOptions.optimized((16, 16)))


@needs_cc
def test_build_native_store_round_trip(tmp_path):
    app, values, plan = _plan()
    cold = build_native(plan, "store_rt", cache_dir=tmp_path, store="rw")
    assert cold.loaded_from_store is False
    store = ScheduleStore(tmp_path / "schedules")
    [entry] = store.entries()
    assert entry.artifact["key"] == cold.build_info.key
    assert entry.tune_result is None

    # a fresh plan (as a cold process would rebuild it) dlopens the
    # published artifact: no compiler run, compile_s == 0
    app2, values2, plan2 = _plan()
    warm = build_native(plan2, "store_rt", cache_dir=tmp_path, store="ro")
    assert warm.loaded_from_store is True
    assert warm.build_info.cache_hit is True
    assert warm.build_info.compile_s == 0.0

    got_cold = cold(values, app.make_inputs(values, np.random.default_rng(0)))
    got_warm = warm(values2,
                    app2.make_inputs(values2, np.random.default_rng(0)))
    for name in got_cold:
        assert np.array_equal(got_cold[name], got_warm[name])


@needs_cc
def test_store_miss_on_option_mismatch(tmp_path):
    app, values, plan = _plan()
    build_native(plan, "opt_a", cache_dir=tmp_path, store="rw")
    other = compile_plan(app.outputs, values, CompileOptions.base())
    rebuilt = build_native(other, "opt_b", cache_dir=tmp_path, store="ro")
    assert rebuilt.loaded_from_store is False


@needs_cc
def test_store_ro_never_publishes(tmp_path):
    _, _, plan = _plan()
    build_native(plan, "ro_only", cache_dir=tmp_path, store="ro")
    assert ScheduleStore(tmp_path / "schedules").entries() == []


def test_build_native_rejects_bad_store_mode():
    _, _, plan = _plan()
    with pytest.raises(ValueError, match="store"):
        build_native(plan, "bad", store="rx")


# -- autotune integration ----------------------------------------------------

@pytest.fixture(scope="module")
def tune_setup():
    app, values = _iunsharp()
    inputs = app.make_inputs(values, np.random.default_rng(1))
    return app, values, inputs


SPACE = [TuneConfig((16, 16), 0.4), TuneConfig((32, 32), 0.4),
         TuneConfig((16, 32), 0.4)]


def test_autotune_store_hit_accounting(tmp_path, tune_setup):
    app, values, inputs = tune_setup
    first = autotune(app.outputs, values, values, inputs, space=SPACE,
                     backend="interp", repeats=1, cache_dir=tmp_path,
                     store="rw")
    assert len(first.results) == len(SPACE) and not first.skipped
    [entry] = ScheduleStore(tmp_path / "schedules").entries()
    assert entry.tune_result is not None

    second = autotune(app.outputs, values, values, inputs, space=SPACE,
                      backend="interp", repeats=1, cache_dir=tmp_path,
                      store="ro")
    # sweep collapses to the stored winner; everything else is skipped
    # with an explicit reason, and the accounting still covers the space
    assert len(second.results) == 1
    assert [s.reason for s in second.skipped] == ["store_hit"] * (
        len(SPACE) - 1)
    assert len(second.results) + len(second.skipped) == len(SPACE)
    assert second.best(parallel=True).config == \
        first.best(parallel=True).config
    assert {s.config for s in second.skipped} == \
        set(SPACE) - {second.results[0].config}


def test_autotune_store_winner_outside_space(tmp_path, tune_setup):
    app, values, inputs = tune_setup
    autotune(app.outputs, values, values, inputs, space=SPACE,
             backend="interp", repeats=1, cache_dir=tmp_path, store="rw")
    narrower = [c for c in SPACE if c.tile_sizes != (16, 16)]
    report = autotune(app.outputs, values, values, inputs, space=narrower,
                      backend="interp", repeats=1, cache_dir=tmp_path,
                      store="ro")
    # the stored winner is still measured even if the caller's space
    # no longer contains it — it is the best known schedule
    assert len(report.results) == 1
    assert all(s.reason == "store_hit" for s in report.skipped)
    assert len(report.skipped) == len(narrower) or \
        report.results[0].config in narrower


def test_autotune_ignores_untimed_and_mismatched_hint_entries(
        tmp_path, tune_setup):
    app, values, inputs = tune_setup
    digest = pipeline_digest(app.outputs, values)
    store = ScheduleStore(tmp_path / "schedules")
    # an untimed build_native publication must not short-circuit a sweep
    store.publish(StoredSchedule(
        pipeline=digest, fingerprint=machine_fingerprint(),
        options=CompileOptions.optimized((16, 16)).to_dict()))
    report = autotune(app.outputs, values, values, inputs, space=SPACE,
                      backend="interp", repeats=1, cache_dir=tmp_path,
                      store="ro")
    assert len(report.results) == len(SPACE) and not report.skipped

    # a tuned entry recorded under *different* hints is ignored too
    autotune(app.outputs, values, values, inputs, space=SPACE,
             backend="interp", repeats=1, cache_dir=tmp_path, store="rw")
    from repro.schedule import ScheduleHints
    hinted = autotune(app.outputs, values, values, inputs, space=SPACE,
                      backend="interp", repeats=1, cache_dir=tmp_path,
                      store="ro",
                      hints=ScheduleHints(
                          force_group=[("iblurx", "iblury")]))
    assert len(hinted.results) == len(SPACE)
    assert not any(s.reason == "store_hit" for s in hinted.skipped)


def test_autotune_rejects_bad_store_mode(tune_setup):
    app, values, inputs = tune_setup
    with pytest.raises(ValueError, match="store"):
        autotune(app.outputs, values, values, inputs, space=SPACE,
                 backend="interp", store="wr")
