"""Unit and compiler-integration tests for :class:`ScheduleHints`."""

import pytest

from repro.apps import iunsharp
from repro.compiler.options import CompileOptions
from repro.compiler.plan import compile_plan
from repro.schedule import ScheduleHints


def _groups(plan):
    return [frozenset(s.name for s in gp.ordered_stages)
            for gp in plan.group_plans]


def _compile(options=None, hints=None):
    app = iunsharp.build_pipeline()
    values = {app.params["R"]: 48, app.params["C"]: 40}
    return compile_plan(app.outputs, values,
                        options or CompileOptions.optimized((16, 16)),
                        hints=hints)


# -- construction and normalization -----------------------------------------

def test_normalization_makes_order_irrelevant():
    a = ScheduleHints(force_group=[("b", "a")], forbid_group=[("d", "c")],
                      tile_override={"s": (8, 16)})
    b = ScheduleHints(force_group=[("a", "b")], forbid_group=[("c", "d")],
                      tile_override=[("s", (8, 16))])
    assert a == b
    assert hash(a) == hash(b)


def test_bare_string_group_rejected():
    with pytest.raises(TypeError, match="bare string"):
        ScheduleHints(force_group=["ab"])


def test_singleton_sets_rejected():
    with pytest.raises(ValueError, match="needs >= 2"):
        ScheduleHints(force_group=[("only",)])
    with pytest.raises(ValueError, match="needs >= 2"):
        ScheduleHints(forbid_group=[("only",)])


def test_tile_override_validation():
    with pytest.raises(ValueError, match="positive"):
        ScheduleHints(tile_override={"s": (0, 16)})
    with pytest.raises(ValueError, match="conflicting"):
        ScheduleHints(tile_override=[("s", (8, 8)), ("s", (16, 16))])
    # scalar spreads to a 1-tuple; consistent duplicates collapse
    h = ScheduleHints(tile_override=[("s", 8), ("s", (8,))])
    assert h.tile_for("s") == (8,)
    assert h.tile_for("other") is None


def test_n_threads_validation():
    assert ScheduleHints(n_threads=2).n_threads == 2
    with pytest.raises(ValueError, match="n_threads"):
        ScheduleHints(n_threads=0)


def test_is_empty_and_stage_names():
    assert ScheduleHints().is_empty()
    h = ScheduleHints(force_group=[("a", "b")], inline=("c",),
                      tile_override={"d": (8, 8)})
    assert not h.is_empty()
    assert h.stage_names() == {"a", "b", "c", "d"}


def test_forbids_and_forces_merge():
    h = ScheduleHints(force_group=[("a", "b")], forbid_group=[("x", "y")])
    assert h.forces_merge({"a"}, {"b", "z"})
    assert not h.forces_merge({"a"}, {"z"})
    assert h.forbids_merge({"x"}, {"y"})
    assert not h.forbids_merge({"x"}, {"z"})
    # both members already on one side: the merge itself is innocent
    assert not h.forbids_merge({"x", "y"}, {"z"})


def test_contradictions():
    clean = ScheduleHints(force_group=[("a", "b")],
                          forbid_group=[("b", "c")])
    assert clean.contradictions() == []
    both = ScheduleHints(force_group=[("a", "b")],
                         forbid_group=[("a", "b")])
    assert len(both.contradictions()) == 1
    inl = ScheduleHints(force_group=[("a", "b")], inline=("a",))
    assert len(inl.contradictions()) == 1


def test_json_round_trip():
    h = ScheduleHints(force_group=[("a", "b")], forbid_group=[("c", "d")],
                      tile_override={"e": (8, 16)}, inline=("f",),
                      n_threads=4)
    assert ScheduleHints.from_dict(h.to_dict()) == h
    assert ScheduleHints.from_dict(ScheduleHints().to_dict()).is_empty()


def test_describe_mentions_every_directive():
    h = ScheduleHints(force_group=[("a", "b")], tile_override={"e": (8,)},
                      inline=("f",), n_threads=2)
    text = h.describe()
    for token in ("force={a,b}", "tile=e:8", "inline={f}", "n_threads=2"):
        assert token in text
    assert ScheduleHints().describe() == "(none)"


# -- compiler integration ----------------------------------------------------

def test_forbid_hint_splits_grouping():
    auto = _compile()
    assert _groups(auto) == [frozenset({"iblurx", "iblury", "imasked"})]
    hinted = _compile(hints=ScheduleHints(
        forbid_group=[("iblurx", "imasked")]))
    assert all(not ({"iblurx", "imasked"} <= g) for g in _groups(hinted))
    assert hinted.verify_report is None  # plan still un-audited
    from repro.verify import verify_plan
    assert verify_plan(hinted).ok


def test_force_hint_overrides_threshold_not_legality():
    # 0.01 threshold splits iblurx off; forcing re-merges it
    split = _compile(CompileOptions.optimized((16, 16), 0.01))
    assert len(split.group_plans) == 2
    forced = _compile(CompileOptions.optimized((16, 16), 0.01),
                      hints=ScheduleHints(
                          force_group=[("iblurx", "iblury")]))
    merged = [g for g in _groups(forced) if {"iblurx", "iblury"} <= g]
    assert merged, _groups(forced)
    from repro.verify import verify_plan
    assert verify_plan(forced).ok


def test_tile_override_retiles_group():
    hinted = _compile(hints=ScheduleHints(
        tile_override={"imasked": (32, 8)}))
    [gp] = hinted.group_plans
    assert gp.tile_sizes == (32, 8)
    from repro.verify import verify_plan
    assert verify_plan(hinted).ok


def test_inline_hint_restricts_inline_pass():
    # the automatic pass inlines isharp; hinting it keeps that choice,
    # hinting nothing inlinable keeps every stage materialized
    auto = _compile()
    assert auto.inlined_names == ("isharp",)
    hinted = _compile(hints=ScheduleHints(inline=("isharp",)))
    assert hinted.inlined_names == ("isharp",)


def test_explain_reports_hint_provenance():
    hinted = _compile(CompileOptions.optimized((16, 16), 0.01),
                      hints=ScheduleHints(
                          force_group=[("iblurx", "iblury")]))
    text = hinted.explain()
    assert "hints: force={iblurx,iblury}" in text
    assert "[hint]" in text
    assert "hint-forced" in text


def test_empty_hints_equal_no_hints():
    a = _compile()
    b = _compile(hints=ScheduleHints())
    assert b.hints is None
    assert _groups(a) == _groups(b)
