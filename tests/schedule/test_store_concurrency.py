"""N processes racing on one schedule store: readers never observe a
torn entry, writers never leak temporaries."""

import json
import multiprocessing

from repro.codegen.build import compiler_available
from repro.compiler.options import CompileOptions
from repro.schedule.store import (
    ScheduleStore, StoredSchedule, machine_fingerprint,
)

PIPELINE = "f" * 32
ROUNDS = 40


def _worker_race(args):
    """Interleave publishes and lookups against one store root.

    Every lookup that returns an entry must see a *complete* document —
    the fingerprint check and options round-trip both throw on a torn
    read.  Returns (published, observed, bad) counts.
    """
    root, idx = args
    from repro.compiler.options import CompileOptions
    from repro.schedule.store import (
        ScheduleStore, StoredSchedule, machine_fingerprint,
    )

    store = ScheduleStore(root)
    fp = machine_fingerprint()
    published = observed = bad = 0
    for round_no in range(ROUNDS):
        store.publish(StoredSchedule(
            pipeline="f" * 32, fingerprint=fp,
            options=CompileOptions.optimized((16, 16)).to_dict(),
            tune_result={"tile_sizes": [16, 16], "overlap_threshold": 0.4,
                         "time_parallel_ms": float(idx * ROUNDS + round_no)},
            created=float(idx * ROUNDS + round_no + 1)))
        published += 1
        entry = store.lookup("f" * 32, fp)
        if entry is None:
            bad += 1  # the key exists from our own publish; None = torn
            continue
        observed += 1
        if entry.compile_options() != CompileOptions.optimized((16, 16)):
            bad += 1
        if "time_parallel_ms" not in (entry.tune_result or {}):
            bad += 1
    return published, observed, bad


def test_racing_processes_never_tear_entries(tmp_path):
    n = 4
    with multiprocessing.get_context("spawn").Pool(n) as pool:
        results = pool.map(_worker_race,
                           [(str(tmp_path), i) for i in range(n)])

    assert sum(p for p, _, _ in results) == n * ROUNDS
    assert all(bad == 0 for _, _, bad in results), results
    assert all(obs == ROUNDS for _, obs, _ in results), results

    # exactly one entry file survives, it parses, and no temporaries leak
    files = list(tmp_path.glob("*.json"))
    assert len(files) == 1
    assert not list(tmp_path.glob(".*.tmp"))
    final = json.loads(files[0].read_text())
    winner = StoredSchedule.from_dict(final)
    assert winner.pipeline == PIPELINE
    assert winner.created >= 1  # one of the racers, whole

    store = ScheduleStore(tmp_path)
    assert store.lookup(PIPELINE, machine_fingerprint()) == winner


def _worker_store_build(args):
    """Cold-start path under contention: every process builds the same
    pipeline with ``store="rw"`` against one cache root."""
    cache_dir, idx = args
    import numpy as np

    from repro import CompileOptions, compile_pipeline
    from repro.apps import iunsharp
    from repro.codegen.build import build_native

    app = iunsharp.build_pipeline()
    values = {app.params["R"]: 48, app.params["C"]: 40}
    plan = compile_pipeline(app.outputs, values,
                            CompileOptions.optimized((16, 16)),
                            name="race").plan
    pipe = build_native(plan, f"race_{idx}", cache_dir=cache_dir,
                        store="rw")
    out = pipe(values, app.make_inputs(values, np.random.default_rng(0)))
    total = float(sum(a.sum() for a in out.values()))
    return pipe.build_info.key, pipe.loaded_from_store, total


def test_concurrent_store_builds_agree(tmp_path):
    if not compiler_available():
        import pytest
        pytest.skip("no C compiler available")
    n = 4
    with multiprocessing.get_context("spawn").Pool(n) as pool:
        results = pool.map(_worker_store_build,
                           [(str(tmp_path), i) for i in range(n)])

    keys = {k for k, _, _ in results}
    sums = {s for _, _, s in results}
    assert len(keys) == 1 and len(sums) == 1

    store = ScheduleStore(tmp_path / "schedules")
    [entry] = store.entries()
    assert entry.artifact["key"] == keys.pop()
    assert not list((tmp_path / "schedules").glob(".*.tmp"))
