"""Error handling and robustness of the native backend."""

import numpy as np
import pytest

from repro import CompileOptions, compile_pipeline
from repro.apps.harris import build_pipeline
from repro.codegen.build import (
    BuildError, build_native, compiler_available, find_compiler,
)

pytestmark = pytest.mark.skipif(not compiler_available(),
                                reason="no C compiler")


@pytest.fixture(scope="module")
def native():
    app = build_pipeline()
    est = {app.params["R"]: 64, app.params["C"]: 64}
    plan = compile_pipeline(app.outputs, est,
                            CompileOptions.optimized((16, 16)),
                            name="nat_err").plan
    return app, est, build_native(plan, "nat_err")


def test_missing_parameter_named(native):
    """A missing Parameter raises ValueError naming it, like the
    interpreter backend — not a bare KeyError."""
    app, est, pipe = native
    R = app.params["R"]
    rng = np.random.default_rng(0)
    inputs = app.make_inputs(est, rng)
    with pytest.raises(ValueError, match="parameter.*C"):
        pipe({R: 64}, inputs)
    with pytest.raises(ValueError, match="C.*R|R.*C"):
        pipe({}, inputs)


def test_invalid_thread_count_rejected(native):
    app, est, pipe = native
    rng = np.random.default_rng(0)
    inputs = app.make_inputs(est, rng)
    for bad in (0, -3):
        with pytest.raises(ValueError, match="n_threads"):
            pipe(est, inputs, n_threads=bad)


def test_missing_input_image_named(native):
    app, est, pipe = native
    with pytest.raises(ValueError, match="missing input.*"):
        pipe(est, {})


def test_wrong_input_shape_rejected(native):
    app, est, pipe = native
    with pytest.raises(ValueError, match="shape"):
        pipe(est, {app.images[0]: np.zeros((4, 4), np.float32)})


def test_empty_domain_rejected(native):
    app, est, pipe = native
    R, C = app.params["R"], app.params["C"]
    # shape check fires first for negative sizes; a matching-but-empty
    # domain (R = -5 gives extents (-3, -3)) can never be satisfied
    with pytest.raises(ValueError):
        pipe({R: -5, C: -5}, {app.images[0]: np.zeros((0, 0), np.float32)})


def test_non_contiguous_input_handled(native):
    """Strided NumPy views are copied to contiguous storage."""
    app, est, pipe = native
    rng = np.random.default_rng(0)
    big = rng.random((2 * 66, 2 * 66), dtype=np.float32)
    view = big[::2, ::2]  # non-contiguous 66x66
    assert not view.flags["C_CONTIGUOUS"]
    out = pipe(est, {app.images[0]: view})["harris"]
    ref = pipe(est, {app.images[0]: np.ascontiguousarray(view)})["harris"]
    np.testing.assert_array_equal(out, ref)


def test_integer_input_coerced(native):
    app, est, pipe = native
    data = np.arange(66 * 66, dtype=np.int64).reshape(66, 66)
    out = pipe(est, {app.images[0]: data})["harris"]
    assert np.isfinite(out).all()


def test_compile_failure_reports_command(tmp_path):
    """A broken plan surfaces the compiler invocation and stderr."""
    from repro.codegen import build as build_mod
    app = build_pipeline()
    est = {app.params["R"]: 32, app.params["C"]: 32}
    plan = compile_pipeline(app.outputs, est, name="nat_broken").plan
    original = build_mod.generate_c
    try:
        build_mod.generate_c = lambda p, n, **kw: "this is not C"
        with pytest.raises(BuildError, match="compilation failed"):
            build_mod.build_native(plan, "nat_broken",
                                   cache_dir=tmp_path)
    finally:
        build_mod.generate_c = original


def test_find_compiler_returns_path():
    cc = find_compiler()
    assert cc and ("gcc" in cc or "cc" in cc or "clang" in cc)
