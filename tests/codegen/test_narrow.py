"""Precision narrowing in the C backend: storage types, footprint,
output equivalence, and the narrow=False no-op guarantee."""

import numpy as np
import pytest

from repro import CompileOptions, compile_pipeline
from repro.apps import iunsharp
from repro.codegen.build import build_native, compiler_available
from repro.codegen.cgen import CGenerator, generate_c
from repro.compiler.plan import compile_plan

SIZE = {"R": 48, "C": 40}
TILES = (16, 16)


def _plans():
    app = iunsharp.build_pipeline()
    values = {app.params[k]: v for k, v in SIZE.items()}
    plain = compile_plan(app.outputs, values,
                         CompileOptions.optimized(TILES))
    narrow = compile_plan(app.outputs, values,
                          CompileOptions.optimized(TILES).with_narrow(True))
    return app, values, plain, narrow


def _arena_bytes(plan) -> int:
    gen = CGenerator(plan)
    return sum(gen._arena_layout(gp)[1]
               for gp in plan.group_plans if gp.is_tiled)


def test_narrowed_scratch_types_in_source():
    _, _, plain, narrow = _plans()
    src_plain = generate_c(plain)
    src_narrow = generate_c(narrow)
    # iblurx/iblury scratchpads are Int declared, UShort narrowed
    assert "unsigned short" not in src_plain
    assert "unsigned short" in src_narrow


def test_narrow_off_is_byte_identical():
    """Codegen must consult only ``plan.narrowing``: with no decisions
    the emitted source is byte-for-byte what the plain plan produces."""
    _, _, plain, narrow = _plans()
    src_plain = generate_c(plain)
    narrow.narrowing = {}
    assert generate_c(narrow) == src_plain


def test_scratch_footprint_reduced():
    _, _, plain, narrow = _plans()
    before = _arena_bytes(plain)
    after = _arena_bytes(narrow)
    assert before > 0
    # Int -> UShort on both scratchpads halves the arena
    assert before / after >= 1.9


def test_explain_reports_narrowing():
    app = iunsharp.build_pipeline()
    values = {app.params[k]: v for k, v in SIZE.items()}
    narrowed = compile_pipeline(
        app.outputs, values, CompileOptions.optimized(TILES).with_narrow(True))
    text = narrowed.explain()
    assert "value ranges & narrowing" in text
    assert "narrowed" in text and "UShort" in text
    plain = compile_pipeline(app.outputs, values,
                             CompileOptions.optimized(TILES))
    assert "value ranges & narrowing" not in plain.explain()


@pytest.mark.skipif(not compiler_available(), reason="no C compiler")
def test_narrowed_native_output_bit_identical():
    app, values, plain, narrow = _plans()
    rng = np.random.default_rng(5)
    inputs = app.make_inputs(values, rng)
    nat_plain = build_native(plain, "narrow_off")
    nat_narrow = build_native(narrow, "narrow_on")
    out_plain = nat_plain(values, inputs)
    out_narrow = nat_narrow(values, inputs)
    for key, arr in out_plain.items():
        assert arr.dtype == out_narrow[key].dtype
        assert np.array_equal(arr, out_narrow[key]), key
