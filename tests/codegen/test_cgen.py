"""Structural tests on generated C (Figure 7 shape)."""

from dataclasses import replace

import pytest

from repro import CompileOptions, compile_pipeline
from repro.apps import harris as harris_app
from repro.codegen.cgen import generate_c


def _harris_source(options):
    app = harris_app.build_pipeline()
    est = {app.params["R"]: 256, app.params["C"]: 256}
    compiled = compile_pipeline(app.outputs, est, options, name="harris")
    return compiled.c_source()


@pytest.fixture(scope="module")
def harris_source():
    """Default build: fast-path specialization + persistent arenas."""
    return _harris_source(CompileOptions.optimized((32, 256)))


@pytest.fixture(scope="module")
def harris_legacy_source():
    """specialize=False reproduces the legacy always-safe code."""
    return _harris_source(
        replace(CompileOptions.optimized((32, 256)),
                specialize=False, simd=False))


def test_signature(harris_source):
    assert "void pipe_harris(int _nthreads, long C, long R," in harris_source
    assert "const float* restrict im_I" in harris_source
    assert "float* restrict out_harris" in harris_source


def test_parallel_tile_loop(harris_source):
    """Figure 7: the outermost tile dimension is work-shared; scratchpads
    are bound once per thread inside the parallel region."""
    assert "#pragma omp parallel" in harris_source
    assert "#pragma omp for schedule(dynamic)" in harris_source
    assert "for (long T0 = T0f; T0 <= T0l; T0++)" in harris_source
    assert "for (long T1 = T1f; T1 <= T1l; T1++)" in harris_source
    # arena binding happens before the work-shared loop (per thread)
    region = harris_source.split("#pragma omp parallel")[1]
    assert region.index("repro_arena_get") < region.index("#pragma omp for")


def test_parallel_tile_loop_legacy_malloc(harris_legacy_source):
    """Without specialization, per-invocation mallocs sit before the
    work-shared loop (per thread, reused across that thread's tiles)."""
    region = harris_legacy_source.split("#pragma omp parallel")[1]
    assert region.index("malloc") < region.index("#pragma omp for")


def test_scratchpads_in_arena(harris_source):
    """Scratchpads for Ix, Iy, Sxx, Syy, Sxy carved out of the arena."""
    for name in ("s_Ix", "s_Iy", "s_Sxx", "s_Syy", "s_Sxy"):
        assert f"{name} = (float*)(_arena + " in harris_source
    assert "malloc(" not in harris_source.split("pipe_harris(")[1]
    # inlined stages have no storage at all
    for name in ("Ixx", "Ixy", "Iyy", "det", "trace"):
        assert f"s_{name}" not in harris_source
        assert f"b_{name}" not in harris_source


def test_scratchpads_allocated_per_thread_legacy(harris_legacy_source):
    """Legacy path: malloc/free per parallel region."""
    for name in ("s_Ix", "s_Iy", "s_Sxx", "s_Syy", "s_Sxy"):
        assert f"{name} = (float*)malloc(" in harris_legacy_source
        assert f"free({name});" in harris_legacy_source
    assert "repro_arena" not in harris_legacy_source
    assert "_release" not in harris_legacy_source


def test_arena_machinery(harris_source):
    """Persistent arenas: reserve at entry, lazy per-thread allocation,
    an exported release, and no per-invocation frees."""
    assert "repro_arena_reserve(omp_get_max_threads());" in harris_source
    assert "aligned_alloc(64, (size_t)REPRO_ARENA_BYTES)" in harris_source
    assert "void pipe_harris_release(void)" in harris_source
    body = harris_source.split("pipe_harris(")[1]
    assert "free(" not in body


def test_clamped_bounds(harris_source):
    """max/min clamping of loop bounds against case regions (Figure 7's
    lbi = max(1, 32*Ti) pattern appears as imax/imin calls)."""
    assert "imax(" in harris_source and "imin(" in harris_source


def test_simd_on_inner_loops(harris_source):
    """Fast nests carry omp simd (stores are unit-stride, alias-free)."""
    assert "#pragma omp simd" in harris_source


def test_ivdep_on_inner_loops_legacy(harris_legacy_source):
    assert "#pragma GCC ivdep" in harris_legacy_source
    assert "#pragma omp simd" not in harris_legacy_source


def test_fast_body_cse_and_hoisting(harris_source):
    """Row offsets hoisted above the innermost loop, loads CSE'd."""
    assert "const long _ro0 = " in harris_source
    assert "const float _ld0 = " in harris_source


def test_helpers_marked_const(harris_source):
    assert "REPRO_CONST static inline long fdiv" in harris_source
    assert "REPRO_CONST static inline long iclamp" in harris_source


def test_tile_sizes_embedded(harris_source):
    assert "T0*32" in harris_source
    assert "T1*256" in harris_source


def test_deterministic_output(harris_source):
    app = harris_app.build_pipeline()
    est = {app.params["R"]: 256, app.params["C"]: 256}
    compiled = compile_pipeline(app.outputs, est,
                                CompileOptions.optimized((32, 256)),
                                name="harris")
    assert compiled.c_source() == harris_source


def test_floor_division_helpers_present(harris_source):
    assert "static inline long fdiv" in harris_source
    assert "static inline long cdiv" in harris_source


def test_base_variant_has_no_tiles():
    app = harris_app.build_pipeline()
    est = {app.params["R"]: 256, app.params["C"]: 256}
    compiled = compile_pipeline(app.outputs, est, CompileOptions.base(),
                                name="hbase")
    src = compiled.c_source()
    assert "T0f" not in src
    assert "malloc" not in src.split("pipe_hbase")[1] or True
    # full buffers for intermediates instead of scratchpads
    assert "b_Ix = (float*)calloc(" in src
    assert "#pragma omp parallel for" in src  # stage loops still parallel


def test_lines_of_generated_code_exceed_input():
    """Paper: the 86-line camera pipeline becomes 732 lines of C++; for
    Harris the ~50-line spec also expands substantially."""
    app = harris_app.build_pipeline()
    est = {app.params["R"]: 256, app.params["C"]: 256}
    compiled = compile_pipeline(app.outputs, est, name="hsize")
    assert len(compiled.c_source().splitlines()) > 100


def test_unroll_pragma_emitted():
    app = harris_app.build_pipeline()
    est = {app.params["R"]: 256, app.params["C"]: 256}
    options = replace(CompileOptions.optimized((32, 256)), unroll=4)
    compiled = compile_pipeline(app.outputs, est, options, name="hunroll")
    src = compiled.c_source()
    assert "#pragma GCC unroll 4" in src
    # pragma must sit directly above the vector pragma + the for loop
    idx = src.index("#pragma GCC unroll 4")
    assert "#pragma omp simd" in src[idx:idx + 120]
