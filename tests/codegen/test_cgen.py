"""Structural tests on generated C (Figure 7 shape)."""

import pytest

from repro import CompileOptions, compile_pipeline
from repro.apps import harris as harris_app
from repro.codegen.cgen import generate_c


@pytest.fixture(scope="module")
def harris_source():
    app = harris_app.build_pipeline()
    est = {app.params["R"]: 256, app.params["C"]: 256}
    compiled = compile_pipeline(app.outputs, est,
                                CompileOptions.optimized((32, 256)),
                                name="harris")
    return compiled.c_source()


def test_signature(harris_source):
    assert "void pipe_harris(int _nthreads, long C, long R," in harris_source
    assert "const float* restrict im_I" in harris_source
    assert "float* restrict out_harris" in harris_source


def test_parallel_tile_loop(harris_source):
    """Figure 7: the outermost tile dimension is work-shared; scratchpads
    are allocated once per thread inside the parallel region."""
    assert "#pragma omp parallel" in harris_source
    assert "#pragma omp for schedule(dynamic)" in harris_source
    assert "for (long T0 = T0f; T0 <= T0l; T0++)" in harris_source
    assert "for (long T1 = T1f; T1 <= T1l; T1++)" in harris_source
    # allocation happens before the work-shared loop (per thread, reused)
    region = harris_source.split("#pragma omp parallel")[1]
    assert region.index("malloc") < region.index("#pragma omp for")


def test_scratchpads_allocated_per_thread(harris_source):
    """Scratchpads for Ix, Iy, Sxx, Syy, Sxy inside the parallel loop."""
    for name in ("s_Ix", "s_Iy", "s_Sxx", "s_Syy", "s_Sxy"):
        assert f"{name} = (float*)malloc(" in harris_source
        assert f"free({name});" in harris_source
    # inlined stages have no storage at all
    for name in ("Ixx", "Ixy", "Iyy", "det", "trace"):
        assert f"s_{name}" not in harris_source
        assert f"b_{name}" not in harris_source


def test_clamped_bounds(harris_source):
    """max/min clamping of loop bounds against case regions (Figure 7's
    lbi = max(1, 32*Ti) pattern appears as imax/imin calls)."""
    assert "imax(" in harris_source and "imin(" in harris_source


def test_ivdep_on_inner_loops(harris_source):
    assert "#pragma GCC ivdep" in harris_source


def test_tile_sizes_embedded(harris_source):
    assert "T0*32" in harris_source
    assert "T1*256" in harris_source


def test_deterministic_output(harris_source):
    app = harris_app.build_pipeline()
    est = {app.params["R"]: 256, app.params["C"]: 256}
    compiled = compile_pipeline(app.outputs, est,
                                CompileOptions.optimized((32, 256)),
                                name="harris")
    assert compiled.c_source() == harris_source


def test_floor_division_helpers_present(harris_source):
    assert "static inline long fdiv" in harris_source
    assert "static inline long cdiv" in harris_source


def test_base_variant_has_no_tiles():
    app = harris_app.build_pipeline()
    est = {app.params["R"]: 256, app.params["C"]: 256}
    compiled = compile_pipeline(app.outputs, est, CompileOptions.base(),
                                name="hbase")
    src = compiled.c_source()
    assert "T0f" not in src
    assert "malloc" not in src.split("pipe_hbase")[1] or True
    # full buffers for intermediates instead of scratchpads
    assert "b_Ix = (float*)calloc(" in src
    assert "#pragma omp parallel for" in src  # stage loops still parallel


def test_lines_of_generated_code_exceed_input():
    """Paper: the 86-line camera pipeline becomes 732 lines of C++; for
    Harris the ~50-line spec also expands substantially."""
    app = harris_app.build_pipeline()
    est = {app.params["R"]: 256, app.params["C"]: 256}
    compiled = compile_pipeline(app.outputs, est, name="hsize")
    assert len(compiled.c_source().splitlines()) > 100


def test_unroll_pragma_emitted():
    from dataclasses import replace
    app = harris_app.build_pipeline()
    est = {app.params["R"]: 256, app.params["C"]: 256}
    options = replace(CompileOptions.optimized((32, 256)), unroll=4)
    compiled = compile_pipeline(app.outputs, est, options, name="hunroll")
    src = compiled.c_source()
    assert "#pragma GCC unroll 4" in src
    # pragma must sit directly above ivdep + the for loop
    idx = src.index("#pragma GCC unroll 4")
    assert "#pragma GCC ivdep" in src[idx:idx + 120]
