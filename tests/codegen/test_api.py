"""Tests for the top-level CompiledPipeline API."""

import numpy as np
import pytest

from repro import CompileOptions, CompiledPipeline, compile_pipeline
from repro.apps.harris import build_pipeline


@pytest.fixture(scope="module")
def compiled():
    app = build_pipeline()
    est = {app.params["R"]: 128, app.params["C"]: 128}
    return app, est, compile_pipeline(app.outputs, est,
                                      CompileOptions.optimized((16, 64)),
                                      name="api_harris")


def test_summary_structure(compiled):
    app, est, cp = compiled
    text = cp.summary()
    assert "stages" in text and "group" in text and "scratch" in text


def test_options_and_outputs_exposed(compiled):
    app, est, cp = compiled
    assert cp.options.tile_sizes == (16, 64)
    assert [s.name for s in cp.outputs] == ["harris"]


def test_callable_and_execute_alias(compiled):
    app, est, cp = compiled
    rng = np.random.default_rng(0)
    inputs = app.make_inputs(est, rng)
    a = cp(est, inputs)["harris"]
    b = cp.execute(est, inputs)["harris"]
    np.testing.assert_array_equal(a, b)


def test_c_source_stable(compiled):
    app, est, cp = compiled
    assert cp.c_source() == cp.c_source()


def test_build_cached(compiled):
    from repro.codegen.build import compiler_available
    if not compiler_available():
        pytest.skip("no C compiler")
    app, est, cp = compiled
    assert cp.build() is cp.build()


def test_build_kwargs_not_stale(compiled):
    """build() then build(vectorize=False) must not return the stale
    vectorized binary — the memo is keyed on the build options."""
    from repro.codegen.build import compiler_available
    if not compiler_available():
        pytest.skip("no C compiler")
    app, est, cp = compiled
    vec = cp.build()
    novec = cp.build(vectorize=False)
    assert vec is not novec
    assert vec.lib_path != novec.lib_path
    # each option set is still memoized individually
    assert cp.build() is vec
    assert cp.build(vectorize=False) is novec


def test_native_pipeline_exposes_source(compiled):
    from repro.codegen.build import compiler_available
    if not compiler_available():
        pytest.skip("no C compiler")
    app, est, cp = compiled
    native = cp.build()
    assert "pipe_api_harris" in native.source
    assert native.lib_path.exists()


def test_version_exported():
    import repro
    assert repro.__version__
