"""Unit tests for C generation helpers: writer, namer, affine emission,
expression emission, and the floor-division helper semantics."""

import subprocess
from fractions import Fraction

import numpy as np
import pytest

from repro import CompileOptions, compile_pipeline
from repro.apps.harris import build_pipeline
from repro.codegen.cgen import CGenerator, CWriter, _Namer, _sanitize
from repro.lang import (
    Cast, Exp, Float, Int, Max, Min, Parameter, Select, Variable,
)
from repro.poly.affine import AffExpr


def test_sanitize():
    assert _sanitize("harris") == "harris"
    assert _sanitize("foo-bar baz") == "foo_bar_baz"
    assert _sanitize("1abc") == "_1abc"
    assert _sanitize("") == "_"


def test_writer_indentation():
    w = CWriter()
    w.open("if (x)")
    w.emit("y = 1;")
    w.close()
    assert str(w) == "if (x) {\n    y = 1;\n}\n"


def test_namer_unique_per_prefix():
    n = _Namer()
    obj = object()
    assert n.name(obj, "s_", "f") == "s_f"
    assert n.name(obj, "b_", "f") == "b_f"
    assert n.name(obj, "s_", "f") == "s_f"  # cached
    other = object()
    assert n.name(other, "s_", "f") == "s_f_1"  # collision resolved


def _generator():
    app = build_pipeline()
    est = {app.params["R"]: 64, app.params["C"]: 64}
    plan = compile_pipeline(app.outputs, est).plan
    return CGenerator(plan), app


def test_affine_int_integral():
    gen, app = _generator()
    R = app.params["R"]
    aff = AffExpr.symbol(R, 2).shift(-1)
    assert gen.affine_int(aff, "floor") == "(2L*R - 1L)"


def test_affine_int_rational_floor_and_ceil():
    gen, app = _generator()
    R = app.params["R"]
    aff = AffExpr.symbol(R, Fraction(1, 2)).shift(Fraction(3, 4))
    assert gen.affine_int(aff, "floor") == "fdiv(2L*R + 3L, 4L)"
    assert gen.affine_int(aff, "ceil") == "cdiv(2L*R + 3L, 4L)"


def test_affine_int_constant():
    gen, _ = _generator()
    assert gen.affine_int(AffExpr.constant(7), "floor") == "(7L)"
    assert gen.affine_int(AffExpr(), "floor") == "(0L)"


def test_expr_emission_operators():
    gen, _ = _generator()
    x = Variable("x")
    names = {id(x): "i0"}
    assert gen.expr(x + 1, names) == "(i0 + 1)"
    assert gen.expr(x // 2, names) == "fdiv(i0, 2)"
    assert gen.expr(x % 3, names) == "pmod(i0, 3)"
    assert gen.expr(-x, names) == "(-i0)"


def test_expr_emission_division_types():
    gen, _ = _generator()
    x = Variable("x")
    names = {id(x): "i0"}
    # int / int must become floating division, like the DSL semantics
    assert "double" in gen.expr(x / 2, names)
    # float / float stays direct
    assert gen.expr((x * 1.0) / 2.0, names).count("double") == 0


def test_expr_emission_calls_and_select():
    gen, _ = _generator()
    x = Variable("x")
    names = {id(x): "i0"}
    assert gen.expr(Exp(x * 1.0), names) == "exp((i0 * 1.0))"
    assert gen.expr(Min(x, 3), names) == "imin(i0, 3)"
    assert gen.expr(Min(x * 1.0, 3.0), names) == "dmin((i0 * 1.0), 3.0)"
    sel = gen.expr(Select(x > 0, 1.0, 0.0), names)
    assert sel == "((i0 > 0) ? 1.0 : 0.0)"
    assert gen.expr(Cast(Float, x), names) == "((float)(i0))"


def test_fdiv_pmod_match_python_semantics(tmp_path):
    """The emitted helpers must floor like Python, not truncate like C."""
    from repro.codegen.build import find_compiler
    cc = find_compiler()
    if cc is None:
        pytest.skip("no C compiler")
    src = tmp_path / "helpers.c"
    src.write_text(r"""
#include <stdio.h>
static inline long fdiv(long a, long b) {
    long q = a / b, r = a % b;
    return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}
static inline long cdiv(long a, long b) { return -fdiv(-a, b); }
static inline long pmod(long a, long b) {
    long r = a % b;
    return (r != 0 && ((r < 0) != (b < 0))) ? r + b : r;
}
int main() {
    for (long a = -7; a <= 7; a++)
        for (long b = 1; b <= 4; b++)
            printf("%ld %ld %ld\n", fdiv(a, b), cdiv(a, b), pmod(a, b));
    return 0;
}
""")
    exe = tmp_path / "helpers"
    subprocess.run([cc, str(src), "-o", str(exe)], check=True)
    lines = subprocess.run([str(exe)], capture_output=True,
                           text=True).stdout.splitlines()
    i = 0
    for a in range(-7, 8):
        for b in range(1, 5):
            f, c, m = map(int, lines[i].split())
            assert f == a // b, (a, b)
            assert c == -((-a) // b), (a, b)
            assert m == a % b, (a, b)
            i += 1
