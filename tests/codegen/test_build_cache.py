"""The persistent, concurrency-safe compiled-artifact cache."""

import multiprocessing

import numpy as np
import pytest

from repro import CompileOptions, compile_pipeline
from repro.apps.harris import build_pipeline
from repro.codegen.build import (
    CANONICAL_FUNC, CompileCache, build_flags, build_native,
    compile_artifact, compiler_available, load_native,
)

pytestmark = pytest.mark.skipif(not compiler_available(),
                                reason="no C compiler")

RNG = np.random.default_rng(7)


@pytest.fixture(scope="module")
def plan():
    app = build_pipeline()
    est = {app.params["R"]: 64, app.params["C"]: 64}
    plan = compile_pipeline(app.outputs, est,
                            CompileOptions.optimized((16, 16)),
                            name="cache_harris").plan
    return app, est, plan


def test_digest_ignores_pipeline_name(plan, tmp_path):
    """Identical plans under different names share one artifact."""
    app, est, p = plan
    a = build_native(p, "name_one", cache_dir=tmp_path)
    b = build_native(p, "name_two", cache_dir=tmp_path)
    assert a.lib_path == b.lib_path
    assert a.build_info.cache_hit is False
    assert b.build_info.cache_hit is True
    assert len(list(tmp_path.glob("*.so"))) == 1
    # the cosmetic source listing still carries the caller's name
    assert "pipe_name_one" in a.source
    assert "pipe_name_two" in b.source


def test_digest_keys_on_flags(plan, tmp_path):
    app, est, p = plan
    a = build_native(p, "flags", cache_dir=tmp_path)
    b = build_native(p, "flags", cache_dir=tmp_path, vectorize=False)
    assert a.lib_path != b.lib_path
    assert b.build_info.cache_hit is False
    assert len(list(tmp_path.glob("*.so"))) == 2


def test_key_for_is_deterministic():
    flags = build_flags()
    assert CompileCache.key_for("int x;", flags) == \
        CompileCache.key_for("int x;", flags)
    assert CompileCache.key_for("int x;", flags) != \
        CompileCache.key_for("int y;", flags)
    assert CompileCache.key_for("int x;", flags) != \
        CompileCache.key_for("int x;", build_flags(vectorize=False))


def test_cached_artifact_runs_correctly(plan, tmp_path):
    app, est, p = plan
    inputs = app.make_inputs(est, RNG)
    first = build_native(p, "run1", cache_dir=tmp_path)
    expected = first(est, inputs)["harris"]
    again = build_native(p, "run2", cache_dir=tmp_path)
    assert again.build_info.cache_hit
    np.testing.assert_array_equal(again(est, inputs)["harris"], expected)


def test_stats_and_eviction(plan, tmp_path):
    app, est, p = plan
    cache = CompileCache(tmp_path)
    infos = [compile_artifact(p, cache=cache, extra_flags=(f"-DX{i}",))
             for i in range(3)]
    assert len({i.key for i in infos}) == 3
    stats = cache.stats()
    assert stats.misses == 3 and stats.hits == 0
    compile_artifact(p, cache=cache, extra_flags=("-DX0",))
    assert cache.stats().hits == 1
    assert cache.size_bytes() > 0

    removed = cache.evict(max_entries=1)
    assert removed == 2
    assert len(cache.entries()) == 1
    assert cache.stats().evictions == 2
    assert cache.clear() == 1
    assert cache.entries() == []
    assert not list(tmp_path.glob("*.c"))


def test_load_native_survives_missing_source(plan, tmp_path):
    """The .c listing is a cache nicety; losing it must not break load."""
    app, est, p = plan
    info = compile_artifact(p, cache_dir=tmp_path)
    info.c_path.unlink()
    pipe = load_native(p, "nosrc", info)
    assert CANONICAL_FUNC.replace("repro_kernel", "nosrc") in pipe.source
    inputs = app.make_inputs(est, RNG)
    assert pipe(est, inputs)["harris"].shape


def _worker_build(args):
    cache_dir, idx = args
    import numpy as np

    from repro import CompileOptions, compile_pipeline
    from repro.apps.harris import build_pipeline
    from repro.codegen.build import build_native

    app = build_pipeline()
    est = {app.params["R"]: 48, app.params["C"]: 48}
    plan = compile_pipeline(app.outputs, est,
                            CompileOptions.optimized((16, 16)),
                            name="concurrent").plan
    pipe = build_native(plan, f"concurrent_{idx}", cache_dir=cache_dir)
    inputs = app.make_inputs(est, np.random.default_rng(0))
    out = pipe(est, inputs)["harris"]
    return str(pipe.lib_path), float(out.sum())


def test_concurrent_builds_publish_one_valid_artifact(tmp_path):
    """Several processes racing on the same key: exactly one published
    ``.so``, no torn reads, identical results everywhere."""
    n = 4
    with multiprocessing.get_context("spawn").Pool(n) as pool:
        results = pool.map(_worker_build, [(str(tmp_path), i)
                                           for i in range(n)])
    paths = {path for path, _ in results}
    sums = {s for _, s in results}
    assert len(paths) == 1
    assert len(sums) == 1
    published = list(tmp_path.glob("*.so"))
    assert len(published) == 1
    # no leftover temporaries
    assert not list(tmp_path.glob(".*.so")) and \
        not list(tmp_path.glob(".*.c"))
