"""Instrumented native builds: per-group timers and tile counters.

Skipped entirely when no C compiler is available (the instrument flag
itself is still exercised at the source level).
"""

import numpy as np
import pytest

from repro import CompileOptions, Tracer, compile_pipeline
from repro.apps import harris as harris_app
from repro.codegen.build import (
    NativeStats, build_native, compiler_available,
)
from repro.codegen.cgen import generate_c

RNG = np.random.default_rng(23)


@pytest.fixture(scope="module")
def harris():
    app = harris_app.build_pipeline()
    R, C = app.params["R"], app.params["C"]
    values = {R: 64, C: 48}
    inputs = app.make_inputs(values, RNG)
    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((16, 16)))
    return app, values, inputs, compiled


# -- source level (no compiler needed) --------------------------------------

def test_instrumented_source_has_stats_symbols(harris):
    _, _, _, compiled = harris
    source = generate_c(compiled.plan, "p", instrument=True)
    assert "repro_now" in source
    assert "repro_group_tiles" in source
    assert "void pipe_p_stats(" in source
    assert "void pipe_p_stats_reset(" in source
    assert "#pragma omp atomic" in source


def test_plain_source_is_unchanged(harris):
    _, _, _, compiled = harris
    source = generate_c(compiled.plan, "p")
    assert "repro_now" not in source
    assert "repro_group" not in source


def test_instrument_changes_cache_key(harris):
    _, _, _, compiled = harris
    from repro.codegen.build import CANONICAL_NAME, CompileCache, build_flags
    flags = build_flags()
    plain = CompileCache.key_for(generate_c(compiled.plan, CANONICAL_NAME),
                                 flags)
    inst = CompileCache.key_for(
        generate_c(compiled.plan, CANONICAL_NAME, instrument=True), flags)
    assert plain != inst


# -- compiled level ----------------------------------------------------------

needs_cc = pytest.mark.skipif(not compiler_available(),
                              reason="no C compiler found")


@needs_cc
def test_instrumented_build_fills_last_stats(harris):
    app, values, inputs, compiled = harris
    native = build_native(compiled.plan, "inst_harris", instrument=True)
    assert native.instrumented
    assert native.last_stats is None
    out = native(values, inputs)
    stats = native.last_stats
    assert isinstance(stats, NativeStats)
    assert len(stats.group_seconds) == len(compiled.plan.group_plans)
    assert all(s >= 0.0 for s in stats.group_seconds)
    # the fused harris group is tiled: tiles must have been counted
    assert sum(stats.group_tiles) > 0
    assert stats.total_seconds >= 0.0
    assert "group 0" in stats.render()
    # results must match the interpreter despite the timers
    ref = compiled(values, inputs)
    for k in ref:
        np.testing.assert_allclose(out[k], ref[k], rtol=2e-4, atol=2e-5)


@needs_cc
def test_stats_reset_between_calls(harris):
    app, values, inputs, compiled = harris
    native = build_native(compiled.plan, "inst_harris2", instrument=True)
    native(values, inputs)
    first = native.last_stats
    native(values, inputs)
    second = native.last_stats
    # counters reset per call: tile counts are identical, not doubled
    assert second.group_tiles == first.group_tiles


@needs_cc
def test_uninstrumented_build_has_no_stats(harris):
    app, values, inputs, compiled = harris
    native = build_native(compiled.plan, "plain_harris")
    assert not native.instrumented
    native(values, inputs)
    assert native.last_stats is None


@needs_cc
def test_instrumented_call_feeds_tracer(harris):
    app, values, inputs, compiled = harris
    native = build_native(compiled.plan, "inst_harris3", instrument=True)
    tracer = Tracer(enabled=True)
    native(values, inputs, tracer=tracer)
    gauges = tracer.metrics.gauges()
    assert any(name.startswith("native.group[") for name in gauges)
    counters = tracer.metrics.counters()
    assert sum(v for k, v in counters.items()
               if k.endswith(".tiles")) > 0
