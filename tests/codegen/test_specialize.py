"""Differential tests for fast-path specialization.

Three layers of evidence that the specialized (interior/boundary split,
clamp-free, strength-reduced, SIMD, arena-backed) code is the *same
function* as the legacy always-safe code:

1. bit-identity: every app, at two tile configurations, produces
   byte-for-byte equal outputs with ``specialize`` on and off;
2. interpreter agreement: the specialized native build matches the
   interpreter at the repo's standard tolerance;
3. golden-source properties: every ``if (_fastok)`` interior block is
   free of ``iclamp``/``fdiv``/``pmod`` helper calls, while the safe
   residual path keeps them.

Plus lifecycle tests (persistent arena + release), executor pool reuse,
option plumbing, and verifier coverage (clean plans stay clean; a
shrunken interior/halo trips RV202 read containment; the RV302 lint
allows thread-indexed arena-slot writes but still catches races).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro import CompileOptions, compile_pipeline
from repro.bench.harness import (
    APP_BUILDERS, DEFAULT_TILES, make_instance, variant_options,
)
from repro.codegen.build import build_native, compiler_available
from repro.codegen.cgen import generate_c
from repro.lang import Float, Function, Image, Int, Interval, Max, Min, \
    Parameter, Variable
from repro.verify import lint_generated_c, verify_plan

pytestmark = pytest.mark.skipif(not compiler_available(),
                                reason="no C compiler found")

APPS = tuple(APP_BUILDERS)
#: a second tile shape (cycled over group dims) to vary tile alignment
ALT_TILES = (16, 64)

#: native-vs-interpreter tolerances; camera's LUT + data-dependent
#: indexing diverges between evaluation orders independent of
#: specialization (the legacy path shows the same delta), so it gets a
#: looser bound.
TOLERANCES = {"camera": dict(rtol=1e-3, atol=5e-3)}
DEFAULT_TOL = dict(rtol=1e-5, atol=1e-6)


def _build_pair(instance, tiles, label):
    """(specialized native, legacy native, specialized compiled)."""
    on = CompileOptions.optimized(tiles)
    off = on.with_specialize(False, simd=False)
    compiled_on = compile_pipeline(instance.app.outputs, instance.values,
                                   on, name=f"{label}_on")
    compiled_off = compile_pipeline(instance.app.outputs, instance.values,
                                    off, name=f"{label}_off")
    nat_on = build_native(compiled_on.plan, f"{label}_on")
    nat_off = build_native(compiled_off.plan, f"{label}_off")
    return nat_on, nat_off, compiled_on


@pytest.mark.parametrize("tiles_key", ["default", "alt"])
@pytest.mark.parametrize("name", APPS)
def test_bit_identical_specialize_on_off(name, tiles_key):
    instance = make_instance(name, "tiny")
    tiles = DEFAULT_TILES[name] if tiles_key == "default" else ALT_TILES
    nat_on, nat_off, _ = _build_pair(instance, tiles,
                                     f"spec_{name}_{tiles_key}")
    out_on = nat_on(instance.values, instance.inputs, n_threads=2)
    out_off = nat_off(instance.values, instance.inputs, n_threads=2)
    for f in instance.app.outputs:
        np.testing.assert_array_equal(out_on[f.name], out_off[f.name])
    nat_on.release()


@pytest.mark.parametrize("name", APPS)
def test_specialized_native_matches_interpreter(name):
    instance = make_instance(name, "tiny")
    options = CompileOptions.optimized(DEFAULT_TILES[name])
    compiled = compile_pipeline(instance.app.outputs, instance.values,
                                options, name=f"specint_{name}")
    native = build_native(compiled.plan, f"specint_{name}")
    nat = native(instance.values, instance.inputs, n_threads=2)
    interp = compiled(instance.values, instance.inputs)
    tol = TOLERANCES.get(name, DEFAULT_TOL)
    for f in instance.app.outputs:
        np.testing.assert_allclose(nat[f.name], interp[f.name], **tol)


# -- golden-source properties ---------------------------------------------

def _fast_blocks(source: str) -> list[str]:
    """The brace-matched bodies of every ``if (_fastok)`` interior nest."""
    blocks, i = [], 0
    while True:
        i = source.find("if (_fastok)", i)
        if i < 0:
            return blocks
        j = source.index("{", i)
        depth, k = 0, j
        while True:
            if source[k] == "{":
                depth += 1
            elif source[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        blocks.append(source[j:k + 1])
        i = k


def _clamped_stencil():
    """A boundary-clamped blur: ``I(max(x-1,0)) .. I(min(x+1,R-1))`` —
    the index expressions are non-affine, so the safe code routes them
    through ``iclamp``; their integer range is derivable, so the
    interior nest may drop it."""
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    x = Variable("x")
    blur = Function(varDom=([x], [Interval(0, R - 1, 1)]), typ=Float,
                    name="cblur")
    blur.defn = (I(Max(x - 1, 0)) + I(x) + I(Min(x + 1, R - 1))) / 3.0
    return R, I, blur


def test_clamped_stencil_interior_is_clamp_free():
    R, I, blur = _clamped_stencil()
    compiled = compile_pipeline([blur], {R: 300},
                                CompileOptions.optimized((32,)),
                                name="golden_clamped")
    source = generate_c(compiled.plan)
    blocks = _fast_blocks(source)
    assert blocks, "expected at least one specialized interior nest"
    for block in blocks:
        assert "iclamp(" not in block
        assert "fdiv(" not in block
        assert "pmod(" not in block
    # the residual path keeps the safe clamped form
    assert "iclamp(" in source
    # and the specialized build still matches the interpreter
    rng = np.random.default_rng(3)
    data = rng.random(300, dtype=np.float32)
    native = build_native(compiled.plan, "golden_clamped")
    nat = native({R: 300}, {I: data})
    interp = compiled({R: 300}, {I: data})
    np.testing.assert_allclose(nat["cblur"], interp["cblur"], rtol=1e-6)


def test_data_dependent_clamps_survive_in_interior():
    """bilateral's grid lookups index by *image values* — their range is
    not statically derivable, so the interior nest must keep those
    ``iclamp`` calls (dropping them would be unsound)."""
    instance = make_instance("bilateral", "tiny")
    compiled = compile_pipeline(instance.app.outputs, instance.values,
                                CompileOptions.optimized((32, 64, 16)),
                                name="golden_bilateral")
    source = generate_c(compiled.plan)
    blocks = _fast_blocks(source)
    assert blocks, "expected a guarded interior nest"
    # the guards here come from division strength reduction, never from
    # the value-dependent clamps
    for block in blocks:
        assert "fdiv(" not in block
        assert "pmod(" not in block


def _upsample_chain():
    R = Parameter(Int, "R")
    I = Image(Float, [2 * R + 2], name="I")
    x = Variable("x")
    down = Function(varDom=([x], [Interval(0, R, 1)]), typ=Float,
                    name="down")
    down.defn = (I(2 * x) + I(2 * x + 1)) / 2.0
    up = Function(varDom=([x], [Interval(0, 2 * R, 1)]), typ=Float,
                  name="up")
    up.defn = down(x // 2)
    return R, I, up


def test_upsample_interior_blocks_use_native_division():
    R, I, up = _upsample_chain()
    compiled = compile_pipeline([up], {R: 200},
                                CompileOptions.optimized((16,)),
                                name="golden_upsample")
    source = generate_c(compiled.plan)
    blocks = _fast_blocks(source)
    assert blocks, "expected a specialized interior nest"
    for block in blocks:
        assert "fdiv(" not in block
        assert "pmod(" not in block
    # the safe path still strength-protects the floor division
    assert "fdiv(" in source
    # and the specialized build still matches the interpreter exactly
    rng = np.random.default_rng(5)
    data = rng.random(402, dtype=np.float32)
    native = build_native(compiled.plan, "golden_upsample")
    nat = native({R: 200}, {I: data})
    interp = compiled({R: 200}, {I: data})
    np.testing.assert_allclose(nat["up"], interp["up"], rtol=1e-6)


def test_legacy_source_has_no_fast_blocks():
    instance = make_instance("harris", "tiny")
    options = CompileOptions.optimized((32, 256)) \
        .with_specialize(False, simd=False)
    compiled = compile_pipeline(instance.app.outputs, instance.values,
                                options, name="golden_harris_legacy")
    source = generate_c(compiled.plan)
    assert "_fastok" not in source
    assert "repro_arena" not in source


# -- arena lifecycle ------------------------------------------------------

def test_arena_release_and_reuse():
    instance = make_instance("harris", "tiny")
    compiled = compile_pipeline(instance.app.outputs, instance.values,
                                CompileOptions.optimized((32, 256)),
                                name="arena_life")
    native = build_native(compiled.plan, "arena_life")
    assert native.has_arena
    first = native(instance.values, instance.inputs, n_threads=2)
    native.release()
    native.release()  # idempotent
    # calling again re-reserves the arena and still computes correctly
    again = native(instance.values, instance.inputs, n_threads=2)
    for f in instance.app.outputs:
        np.testing.assert_array_equal(first[f.name], again[f.name])
    native.release()


def test_legacy_build_has_no_arena():
    instance = make_instance("harris", "tiny")
    options = CompileOptions.optimized((32, 256)) \
        .with_specialize(False, simd=False)
    compiled = compile_pipeline(instance.app.outputs, instance.values,
                                options, name="arena_legacy")
    native = build_native(compiled.plan, "arena_legacy")
    assert not native.has_arena
    native.release()  # a no-op, must not raise


# -- executor pool reuse --------------------------------------------------

def test_worker_pools_are_process_wide():
    from repro.runtime.executor import get_worker_pool
    assert get_worker_pool(2) is get_worker_pool(2)
    assert get_worker_pool(2) is not get_worker_pool(3)
    with pytest.raises(ValueError):
        get_worker_pool(0)


# -- option plumbing ------------------------------------------------------

def test_with_specialize_round_trip():
    opts = CompileOptions.optimized((32, 256))
    assert opts.specialize and opts.simd
    off = opts.with_specialize(False, simd=False)
    assert not off.specialize and not off.simd
    assert off.with_specialize(True, simd=True) == opts
    # simd defaults to unchanged
    assert opts.with_specialize(False).simd is True


def test_variant_options_gate_simd_on_vectorize():
    for name in ("harris", "unsharp"):
        opts, vec = variant_options(name, "opt")
        assert not vec and not opts.simd
        opts, vec = variant_options(name, "opt+vec")
        assert vec and opts.simd
        opts, vec = variant_options(name, "base")
        assert not vec and not opts.simd


# -- verifier coverage ----------------------------------------------------

@pytest.mark.parametrize("name", ["harris", "interpolate"])
def test_verify_clean_with_specialization(name):
    instance = make_instance(name, "tiny")
    plan = compile_pipeline(instance.app.outputs, instance.values,
                            CompileOptions.optimized(DEFAULT_TILES[name]),
                            name=f"vspec_{name}").plan
    report = verify_plan(plan, lint_c=True)
    assert report.ok, report.render()


def test_shrunken_interior_halo_trips_read_containment():
    """Simulate a guard/interior derivation that under-estimated the
    halo a tile must evaluate: reads escape the evaluation regions and
    RV202 must fire."""
    from fractions import Fraction
    instance = make_instance("harris", "tiny")
    plan = compile_pipeline(instance.app.outputs, instance.values,
                            CompileOptions.optimized((32, 256)),
                            name="vspec_shrunk").plan
    gp = plan.group_plans[0]
    for stage, halo in list(gp.group.halos.items()):
        gp.group.halos[stage] = type(halo)(
            tuple(max(Fraction(0), l - 1) for l in halo.left),
            tuple(max(Fraction(0), r - 1) for r in halo.right))
    report = verify_plan(plan, checks=("storage",))
    assert "RV202" in report.codes(), report.render()


def test_rv302_allows_thread_indexed_arena_writes():
    source = "\n".join([
        "static void** repro_arena_slots = NULL;",
        "#pragma omp parallel",
        "{",
        "  long _tid = omp_get_thread_num();",
        "  repro_arena_slots[_tid] = NULL;",
        "}",
    ])
    assert lint_generated_c(source) == []


def test_rv302_still_catches_shared_static_writes():
    source = "\n".join([
        "static void** repro_arena_slots = NULL;",
        "#pragma omp parallel",
        "{",
        "  repro_arena_slots[0] = NULL;",
        "}",
    ])
    diags = lint_generated_c(source)
    assert diags and all(d.code == "RV302" for d in diags)


def test_specialized_app_source_passes_lint():
    instance = make_instance("interpolate", "tiny")
    plan = compile_pipeline(instance.app.outputs, instance.values,
                            CompileOptions.optimized((8, 64, 256)),
                            name="lint_interp").plan
    assert lint_generated_c(generate_c(plan)) == []
