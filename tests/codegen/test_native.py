"""Native (gcc + ctypes) backend equivalence tests.

Every pipeline is executed with the interpreter backend and the compiled
C backend; results must agree to floating tolerance.  Skipped entirely
when no C compiler is available.
"""

import numpy as np
import pytest

from repro import CompileOptions, compile_pipeline
from repro.apps import harris as harris_app
from repro.codegen.build import build_native, compiler_available
from repro.lang import (
    Accumulate, Accumulator, Case, Cast, Condition, Float, Function, Image,
    Int, Interval, Parameter, Select, Stencil, Sum, UChar, Variable,
)

pytestmark = pytest.mark.skipif(not compiler_available(),
                                reason="no C compiler found")

RNG = np.random.default_rng(11)


def both_backends(compiled, name, values, inputs, n_threads=1):
    interp = compiled(values, inputs)
    native = build_native(compiled.plan, name)
    nat = native(values, inputs, n_threads=n_threads)
    return interp, nat


@pytest.mark.parametrize("options,label", [
    (CompileOptions.optimized((32, 256)), "opt"),
    (CompileOptions.optimized((16, 16)), "opt16"),
    (CompileOptions.base(), "base"),
])
def test_harris_native_matches_interpreter(options, label):
    app = harris_app.build_pipeline()
    R, C = app.params["R"], app.params["C"]
    values = {R: 61, C: 45}
    inputs = app.make_inputs(values, RNG)
    compiled = compile_pipeline(app.outputs, values, options,
                                name=f"nat_harris_{label}")
    interp, nat = both_backends(compiled, f"nat_harris_{label}",
                                values, inputs, n_threads=2)
    np.testing.assert_allclose(nat["harris"], interp["harris"],
                               rtol=1e-5, atol=1e-6)


def test_native_novec_flag_builds():
    app = harris_app.build_pipeline()
    R, C = app.params["R"], app.params["C"]
    values = {R: 33, C: 33}
    inputs = app.make_inputs(values, RNG)
    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((16, 16)),
                                name="nat_novec")
    native = build_native(compiled.plan, "nat_novec", vectorize=False)
    expected = compiled(values, inputs)["harris"]
    out = native(values, inputs)["harris"]
    np.testing.assert_allclose(out, expected, rtol=1e-5, atol=1e-6)


def test_native_histogram():
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    I = Image(UChar, [R, C], name="I")
    x, y, b = Variable("x"), Variable("y"), Variable("b")
    row, col = Interval(0, R - 1, 1), Interval(0, C - 1, 1)
    hist = Accumulator(redDom=([x, y], [row, col]),
                       varDom=([b], [Interval(0, 255, 1)]),
                       typ=Int, name="hist")
    hist.defn = Accumulate(hist(Cast(Int, I(x, y))), 1, Sum)
    values = {R: 37, C: 53}
    img = RNG.integers(0, 256, size=(37, 53), dtype=np.uint8)
    compiled = compile_pipeline([hist], values, name="nat_hist")
    interp, nat = both_backends(compiled, "nat_hist", values, {I: img})
    np.testing.assert_array_equal(nat["hist"], interp["hist"])


def test_native_time_iterated():
    R = Parameter(Int, "R")
    I = Image(Float, [R + 2], name="I")
    t, x = Variable("t"), Variable("x")
    f = Function(varDom=([t, x], [Interval(0, 4, 1), Interval(0, R + 1, 1)]),
                 typ=Float, name="f")
    f.defn = [
        Case(Condition(t, "==", 0), I(x)),
        Case(Condition(t, ">=", 1) & Condition(x, ">=", 1)
             & Condition(x, "<=", R),
             (f(t - 1, x - 1) + f(t - 1, x) + f(t - 1, x + 1)) / 3.0),
    ]
    values = {R: 40}
    data = RNG.random(42, dtype=np.float32)
    compiled = compile_pipeline([f], values, name="nat_jacobi")
    interp, nat = both_backends(compiled, "nat_jacobi", values, {I: data})
    np.testing.assert_allclose(nat["f"], interp["f"], rtol=1e-5)


def test_native_sampling_chain():
    R = Parameter(Int, "R")
    I = Image(Float, [2 * R + 2], name="I")
    x = Variable("x")
    down = Function(varDom=([x], [Interval(0, R, 1)]), typ=Float, name="down")
    down.defn = (I(2 * x) + I(2 * x + 1)) / 2.0
    up = Function(varDom=([x], [Interval(0, 2 * R, 1)]), typ=Float, name="up")
    up.defn = down(x // 2)
    values = {R: 53}
    data = RNG.random(108, dtype=np.float32)
    compiled = compile_pipeline([up], values, CompileOptions.optimized((16,)),
                                name="nat_updown")
    assert len(compiled.plan.group_plans) == 1  # fused across sampling
    interp, nat = both_backends(compiled, "nat_updown", values, {I: data})
    np.testing.assert_allclose(nat["up"], interp["up"], rtol=1e-6)


def test_native_multi_output_liveout_in_group():
    """blur is an output AND consumed in-group by sharp: the C backend
    must give it a scratchpad plus an owned-region copy-out."""
    R = Parameter(Int, "R")
    I = Image(Float, [R + 2], name="I")
    x = Variable("x")
    dom = Interval(0, R + 1, 1)
    c = Condition(x, ">=", 1) & Condition(x, "<=", R)
    blur = Function(varDom=([x], [dom]), typ=Float, name="blur")
    blur.defn = [Case(c, Stencil(I(x), 1.0 / 3, [1, 1, 1]))]
    sharp = Function(varDom=([x], [dom]), typ=Float, name="sharp")
    sharp.defn = [Case(c, I(x) * 2.0 - (blur(x - 1) + blur(x + 1)) / 2.0)]
    values = {R: 300}
    data = RNG.random(302, dtype=np.float32)
    compiled = compile_pipeline([blur, sharp], values,
                                CompileOptions.optimized((32,)),
                                name="nat_multi")
    # both in one tiled group
    assert len(compiled.plan.group_plans) == 1
    interp, nat = both_backends(compiled, "nat_multi", values, {I: data},
                                n_threads=2)
    np.testing.assert_allclose(nat["blur"], interp["blur"], rtol=1e-5)
    np.testing.assert_allclose(nat["sharp"], interp["sharp"], rtol=1e-5)


def test_native_data_dependent_lut():
    R = Parameter(Int, "R")
    I = Image(Float, [R], name="I")
    x = Variable("x")
    lut = Function(varDom=([x], [Interval(0, 255, 1)]), typ=Float, name="lut")
    lut.defn = x * x / 255.0
    f = Function(varDom=([x], [Interval(0, R - 1, 1)]), typ=Float, name="f")
    f.defn = lut(Cast(Int, Select(I(x) > 1.0, 255.0, I(x) * 255.0)))
    values = {R: 64}
    data = (RNG.random(64) * 1.2).astype(np.float32)
    compiled = compile_pipeline([f], values, name="nat_lut")
    interp, nat = both_backends(compiled, "nat_lut", values, {I: data})
    np.testing.assert_allclose(nat["f"], interp["f"], rtol=1e-5)


def test_native_different_sizes_same_binary():
    """One compiled binary serves multiple parameter values."""
    app = harris_app.build_pipeline()
    R, C = app.params["R"], app.params["C"]
    est = {R: 256, C: 256}
    compiled = compile_pipeline(app.outputs, est,
                                CompileOptions.optimized((32, 256)),
                                name="nat_resize")
    native = build_native(compiled.plan, "nat_resize")
    for r, c in [(31, 97), (64, 64), (130, 40)]:
        values = {R: r, C: c}
        inputs = app.make_inputs(values, RNG)
        expected = app.reference(inputs, values)["harris"]
        out = native(values, inputs)["harris"]
        np.testing.assert_allclose(out, expected, rtol=2e-4, atol=2e-5)
