"""Golden per-stage range tables for every benchmark app.

Float-typed input images seed the lattice top, so purely-float pipelines
(unsharp, harris, ...) derive unbounded stage ranges unless the caller
supplies ``input_ranges`` — that behaviour is itself part of the golden
contract.  Integer inputs (camera's 16-bit raw, iunsharp's 8-bit image)
propagate finite ranges through every stage that stays affine in the
input values.
"""

import math

import pytest

from repro import CompileOptions, compile_pipeline
from repro.apps import (
    bilateral, camera, harris, interpolate, iunsharp, laplacian, pyramid,
    unsharp,
)

CASES = [
    ("unsharp", unsharp, {}, {"R": 48, "C": 40}, 3),
    ("harris", harris, {}, {"R": 61, "C": 45}, 6),
    ("bilateral", bilateral, {}, {"R": 64, "C": 48}, 9),
    ("camera", camera, {}, {"R": 48, "C": 40}, 24),
    ("pyramid_blend", pyramid, {"levels": 3}, {"R": 64, "C": 64}, 22),
    ("interpolate", interpolate, {"levels": 4}, {"R": 64, "C": 64}, 17),
    ("local_laplacian", laplacian, {"j_levels": 4, "levels": 3},
     {"R": 64, "C": 64}, 32),
    ("iunsharp", iunsharp, {}, {"R": 48, "C": 40}, 3),
]

#: stages whose derived range is finite (everything else in the app is
#: the full lattice top, i.e. ``[-inf, inf] real``), with golden reprs
#: for a representative subset
GOLDEN = {
    "unsharp": {},
    "harris": {},
    "bilateral": {},
    "pyramid_blend": {},
    "interpolate": {},
    "local_laplacian": {},
    "iunsharp": {
        "iblurx": "[0, 4080] int",
        "iblury": "[0, 65280] int",
        "imasked": "[0, 255] int",
    },
    # camera: the raw input is UShort scaled by matrix coefficients, so
    # the demosaic front-end stays finite; the LUT stages (curve is a
    # reduction, processed indexes it) fall to top
    "camera": {
        "denoised": "[-7.63674e-06, 64.0616] real",
        "g_r": "[-3.05469e-05, 64.0616] real",
        "full_red": "[-64.0617, 137.733] real",
        "full_blue": "[-64.0617, 144.139] real",
        "curve": "[-inf, inf] real",
        "processed": "[-inf, inf] real",
    },
}

#: camera stages expected to carry finite derived ranges
CAMERA_FINITE = {
    "denoised", "raw_r", "raw_gb", "raw_gr", "raw_b",
    "gv_r", "gh_b", "gh_r", "gv_b", "g_r", "g_b",
    "r_gb", "r_gr", "r_b", "full_g", "b_gb", "b_r", "b_gr",
    "full_red", "full_blue",
}


def _ranges(module, kwargs, size):
    app = module.build_pipeline(**kwargs)
    values = {app.params[k]: v for k, v in size.items()}
    compiled = compile_pipeline(app.outputs, values, CompileOptions())
    return compiled, compiled.ranges()


@pytest.mark.parametrize("name,module,kwargs,size,n_stages", CASES,
                         ids=[c[0] for c in CASES])
def test_golden_range_table(name, module, kwargs, size, n_stages):
    _, ranges = _ranges(module, kwargs, size)
    assert len(ranges) == n_stages
    golden = GOLDEN[name]
    for stage, want in golden.items():
        assert repr(ranges[stage]) == want, stage
    if name == "camera":
        finite = {s for s, r in ranges.items() if r.is_finite}
        assert finite == CAMERA_FINITE
    elif not golden:
        # float-image apps: every stage is the lattice top
        assert all(math.isinf(r.lo) and math.isinf(r.hi)
                   for r in ranges.values())


def test_input_ranges_override_tightens_float_apps():
    app = unsharp.build_pipeline()
    values = {app.params["R"]: 48, app.params["C"]: 40}
    compiled = compile_pipeline(app.outputs, values, CompileOptions())
    ranges = compiled.ranges(input_ranges={"Iu": (0.0, 1.0)})
    for r in ranges.values():
        assert r.is_finite
    blurx = ranges["blurx"]
    # a convex combination of [0, 1] pixels, padded by one f32 epsilon
    assert blurx.lo == pytest.approx(0.0, abs=1e-6)
    assert blurx.hi == pytest.approx(1.0, abs=1e-6)
    masked = ranges["masked"]
    assert -4.0 < masked.lo <= 0.0 and 1.0 <= masked.hi < 5.0


def test_ranges_prefers_plan_value_ranges_under_narrow():
    app = iunsharp.build_pipeline()
    values = {app.params["R"]: 48, app.params["C"]: 40}
    compiled = compile_pipeline(
        app.outputs, values, CompileOptions().with_narrow(True))
    assert compiled.plan.value_ranges is not None
    table = compiled.ranges()
    assert table == {s.name: r
                     for s, r in compiled.plan.value_ranges.items()}
    assert repr(table["iblury"]) == "[0, 65280] int"
