"""Unit tests for the value-range lattice and its transfer functions."""

import math

import pytest

from repro.analysis.ranges import (
    F32_EXACT_INT, TOP, RangeAnalysis, ValueInterval, narrow_target,
    narrowing_decisions,
)
from repro.lang.types import (
    Char, Double, Float, Int, Long, Short, UChar, UShort,
)

INF = math.inf


# ---------------------------------------------------------------------------
# ValueInterval structure
# ---------------------------------------------------------------------------

def test_point_constructors():
    p = ValueInterval.point(7)
    assert (p.lo, p.hi, p.integral) == (7, 7, True)
    q = ValueInterval.point(0.5)
    assert (q.lo, q.hi, q.integral) == (0.5, 0.5, False)


def test_of_dtype():
    assert ValueInterval.of_dtype(UChar) == ValueInterval(0, 255, True)
    assert ValueInterval.of_dtype(Char) == ValueInterval(-128, 127, True)
    assert ValueInterval.of_dtype(UShort) == ValueInterval(0, 65535, True)
    assert ValueInterval.of_dtype(Int) == ValueInterval(-2**31, 2**31 - 1,
                                                        True)
    assert ValueInterval.of_dtype(Float) is TOP
    assert ValueInterval.of_dtype(Double) is TOP


def test_empty_interval_rejected():
    with pytest.raises(ValueError):
        ValueInterval(3, 2)
    with pytest.raises(ValueError):
        ValueInterval(0.0, 0.5, True)  # non-integer endpoints


def test_integral_endpoints_coerced_to_int():
    r = ValueInterval(1.0, 4.0, True)
    assert isinstance(r.lo, int) and isinstance(r.hi, int)


def test_hull_integrality():
    a = ValueInterval(0, 10, True)
    b = ValueInterval(-2.5, 3.0, False)
    h = a.hull(b)
    assert (h.lo, h.hi, h.integral) == (-2.5, 10, False)
    assert a.hull(ValueInterval(5, 20, True)).integral


def test_contains_integrality_only_tightens():
    real = ValueInterval(0.0, 10.0, False)
    ints = ValueInterval(0, 10, True)
    assert real.contains(ints)
    assert real.contains(real)
    assert ints.contains(ints)
    # an integral claim does NOT contain a merely-real derivation
    assert not ints.contains(real)
    assert not real.contains(ValueInterval(-1, 5, True))


def test_fits():
    assert ValueInterval(0, 255, True).fits(UChar)
    assert not ValueInterval(0, 256, True).fits(UChar)
    assert not ValueInterval(-1, 10, True).fits(UChar)
    assert ValueInterval(-128, 127, True).fits(Char)
    assert ValueInterval(0, 4080, True).fits(UShort)
    # float32: only exactly-representable integer ranges fit
    assert ValueInterval(-F32_EXACT_INT, F32_EXACT_INT, True).fits(Float)
    assert not ValueInterval(0, F32_EXACT_INT + 1, True).fits(Float)
    assert not ValueInterval(0.0, 1.0, False).fits(Float)
    assert TOP.fits(Double)
    assert not TOP.fits(Int)


def test_repr_forms():
    assert repr(ValueInterval(0, 4080, True)) == "[0, 4080] int"
    assert repr(TOP) == "[-inf, inf] real"


# ---------------------------------------------------------------------------
# Binary-operator transfer functions
# ---------------------------------------------------------------------------

binop = RangeAnalysis._binop_range


def iv(lo, hi, integral=True):
    return ValueInterval(lo, hi, integral)


def test_add_sub_mul():
    assert binop("+", iv(1, 2), iv(10, 20)) == iv(11, 22)
    assert binop("-", iv(1, 2), iv(10, 20)) == iv(-19, -8)
    assert binop("*", iv(-2, 3), iv(-5, 7)) == iv(-15, 21)
    assert not binop("+", iv(0, 1), iv(0.0, 1.0, False)).integral


def test_mul_zero_times_infinity_is_zero():
    r = binop("*", ValueInterval.point(0), TOP)
    assert (r.lo, r.hi) == (0, 0)
    assert not r.integral  # TOP is non-integral, and integrality ANDs


def test_true_division():
    r = binop("/", iv(10, 20), iv(2, 4))
    assert (r.lo, r.hi, r.integral) == (2.5, 10.0, False)
    # negative divisor flips the order
    r = binop("/", iv(10, 20), iv(-4, -2))
    assert (r.lo, r.hi) == (-10.0, -2.5)
    # a divisor range crossing zero is unbounded
    assert binop("/", iv(1, 2), iv(-1, 1)) is TOP
    assert binop("/", iv(1, 2), TOP) is TOP


def test_floor_division_negative_divisor():
    assert binop("//", iv(1, 7), iv(2, 2)) == iv(0, 3)
    # Python floor semantics: 7 // -2 == -4, 1 // -2 == -1
    assert binop("//", iv(1, 7), iv(-2, -2)) == iv(-4, -1)
    assert binop("//", iv(-7, 7), iv(-3, -2)) == iv(-4, 3)  # 7 // -2 == -4
    assert binop("//", iv(1, 7), iv(-1, 1)) is TOP


def test_modulo_takes_divisor_sign():
    assert binop("%", iv(-100, 100), iv(5, 8)) == iv(0, 7)
    assert binop("%", iv(-100, 100), iv(-8, -5)) == iv(-7, 0)
    assert binop("%", iv(0, 10), iv(-1, 1)) is TOP


# ---------------------------------------------------------------------------
# Call transfer functions
# ---------------------------------------------------------------------------

call = RangeAnalysis._call_range


def test_min_max():
    assert call("min", [iv(0, 10), iv(3, 5)]) == iv(0, 5)
    assert call("max", [iv(0, 10), iv(3, 5)]) == iv(3, 10)


def test_abs_sign_cases():
    assert call("abs", [iv(2, 5)]) == iv(2, 5)
    assert call("abs", [iv(-5, -2)]) == iv(2, 5)
    assert call("abs", [iv(-3, 5)]) == iv(0, 5)


def test_floor_ceil_produce_integral():
    r = call("floor", [iv(-1.5, 2.5, False)])
    assert (r.lo, r.hi, r.integral) == (-2, 2, True)
    r = call("ceil", [iv(-1.5, 2.5, False)])
    assert (r.lo, r.hi, r.integral) == (-1, 3, True)
    assert not call("floor", [TOP]).integral


def test_sqrt_clamps_negative_lo():
    r = call("sqrt", [iv(-4, 9)])
    assert (r.lo, r.hi) == (0.0, 3.0)
    assert call("sqrt", [iv(-9, -4)]) is TOP


def test_trig_and_unsupported():
    assert call("sin", [TOP]) == ValueInterval(-1.0, 1.0, False)
    assert call("cos", [iv(0, 1)]) == ValueInterval(-1.0, 1.0, False)
    assert call("tan", [iv(0, 1)]) is TOP
    assert call("pow", [iv(0, 1), iv(0, 1)]) is TOP


# ---------------------------------------------------------------------------
# Cast transfer function
# ---------------------------------------------------------------------------

cast = RangeAnalysis._cast_range


def test_cast_fitting_integer_is_exact():
    assert cast(iv(0, 200), UChar) == iv(0, 200)


def test_cast_out_of_range_integer_widens_to_dtype():
    assert cast(iv(0, 300), UChar) == ValueInterval.of_dtype(UChar)


def test_cast_float_truncates_toward_zero():
    r = cast(iv(-1.9, 2.9, False), Int)
    assert (r.lo, r.hi, r.integral) == (-1, 2, True)


def test_cast_unbounded_to_int_is_dtype_range():
    assert cast(TOP, Int) == ValueInterval.of_dtype(Int)


def test_cast_to_float32_pads_inexact_range():
    r = cast(iv(0, 10**9), Float)  # not exactly representable
    assert r.lo < 0 < 10**9 < r.hi
    assert not r.integral
    # exactly representable ranges pass through unchanged
    assert cast(iv(0, 100), Float) == iv(0, 100)


# ---------------------------------------------------------------------------
# Narrowing decisions
# ---------------------------------------------------------------------------

def test_narrow_target_integers():
    assert narrow_target(Int, iv(0, 200)) is UChar
    assert narrow_target(Int, iv(-5, 100)) is Char
    assert narrow_target(Int, iv(-5, 200)) is Short
    assert narrow_target(Int, iv(0, 4080)) is UShort
    assert narrow_target(Int, iv(0, 10**6)) is None
    assert narrow_target(Short, iv(0, 200)) is UChar
    # already the narrowest type: nothing below a byte
    assert narrow_target(UChar, iv(0, 10)) is None
    # unproven (non-integral or unbounded) ranges never narrow
    assert narrow_target(Int, iv(0.0, 10.0, False)) is None
    assert narrow_target(Int, TOP) is None
    # 64-bit types are excluded (their consumers compute in long)
    assert narrow_target(Long, iv(0, 10)) is None


def test_narrow_target_floats():
    assert narrow_target(Double, iv(0, 255)) is Float
    assert narrow_target(Double, iv(0, F32_EXACT_INT + 1)) is None
    assert narrow_target(Double, iv(0.0, 1.0, False)) is None
    assert narrow_target(Float, iv(0, 10)) is None


def test_narrowing_decisions_skip_outputs():
    from repro import CompileOptions, compile_pipeline
    from repro.analysis import analyze_ranges
    from repro.apps import iunsharp

    app = iunsharp.build_pipeline()
    values = {app.params["R"]: 48, app.params["C"]: 40}
    compiled = compile_pipeline(app.outputs, values, CompileOptions())
    ranges = analyze_ranges(compiled.plan)
    decisions = narrowing_decisions(compiled.plan, ranges)
    by_name = {s.name: d for s, d in decisions.items()}
    assert by_name == {"iblurx": UShort, "iblury": UShort}
    # the output stage fits UChar but must keep its declared type
    assert "imasked" not in by_name
