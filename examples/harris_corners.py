"""Harris corner detection end-to-end (the paper's running example).

Builds the Figure 1 pipeline, prints its stage graph (Figure 2) and the
compiler's decisions, runs it on a synthetic image with both backends,
and reports detected corners::

    python examples/harris_corners.py [rows cols]
"""

import sys

import numpy as np

from repro import CompileOptions, compile_pipeline
from repro.apps.harris import build_pipeline
from repro.data import smooth_image
from repro.pipeline.graph import PipelineGraph


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    cols = int(sys.argv[2]) if len(sys.argv) > 2 else 512

    app = build_pipeline()
    R, C = app.params["R"], app.params["C"]
    I = app.images[0]

    print("pipeline graph (Figure 2):")
    print(PipelineGraph(app.outputs).dot())

    values = {R: rows, C: cols}
    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((32, 256)),
                                name="harris_example")
    print("\ncompiler decisions:")
    print(compiled.summary())

    rng = np.random.default_rng(7)
    image = np.zeros((rows + 2, cols + 2), np.float32)
    image[1:-1, 1:-1] = smooth_image(rows, cols, rng)
    # plant a checkerboard patch: strong, localised corners
    s = rows // 8
    patch = np.indices((s, s)).sum(axis=0) % 2
    image[8:8 + s, 8:8 + s] = patch.astype(np.float32)

    out = compiled(values, {I: image})["harris"]
    threshold = out.max() * 0.2
    corners = np.argwhere(out > threshold)
    print(f"\nresponse: max={out.max():.5f}; "
          f"{len(corners)} pixels above 20% of peak")
    print(f"strongest corner at {tuple(np.unravel_index(out.argmax(), out.shape))}")

    try:
        native = compiled.build()
    except Exception as exc:
        print(f"(skipping native backend: {exc})")
        return
    nat = native(values, {I: image}, n_threads=2)["harris"]
    print(f"native backend agrees: "
          f"{np.allclose(nat, out, rtol=1e-4, atol=1e-6)}")


if __name__ == "__main__":
    main()
