"""Quickstart: write a small pipeline, compile it, run it both ways.

A two-stage blur/sharpen pipeline written directly in the DSL —
the shortest end-to-end tour of the public API::

    python examples/quickstart.py
"""

import numpy as np

from repro import CompileOptions, compile_pipeline
from repro.lang import (
    Case, Condition, Float, Function, Image, Int, Interval, Parameter,
    Stencil, Variable,
)


def main() -> None:
    # -- 1. declare parameters, the input image and the domain -----------
    R, C = Parameter(Int, "R"), Parameter(Int, "C")
    I = Image(Float, [R + 2, C + 2], name="input")

    x, y = Variable("x"), Variable("y")
    row, col = Interval(0, R + 1, 1), Interval(0, C + 1, 1)
    interior = (Condition(x, ">=", 1) & Condition(x, "<=", R)
                & Condition(y, ">=", 1) & Condition(y, "<=", C))

    # -- 2. define the stages ---------------------------------------------
    blur = Function(varDom=([x, y], [row, col]), typ=Float, name="blur")
    blur.defn = [Case(interior, Stencil(I(x, y), 1.0 / 16,
                                        [[1, 2, 1],
                                         [2, 4, 2],
                                         [1, 2, 1]]))]

    sharpen = Function(varDom=([x, y], [row, col]), typ=Float,
                       name="sharpen")
    sharpen.defn = [Case(interior, 2.0 * I(x, y) - blur(x, y))]

    # -- 3. compile: inlining, grouping, overlapped tiling, storage -------
    estimates = {R: 1024, C: 1024}
    compiled = compile_pipeline([sharpen], estimates,
                                CompileOptions.optimized((32, 256)),
                                name="quickstart")
    print(compiled.summary())

    # -- 4. run with the NumPy interpreter backend ------------------------
    rng = np.random.default_rng(0)
    values = {R: 1024, C: 1024}
    image = rng.random((1026, 1026), dtype=np.float32)
    out = compiled(values, {I: image})["sharpen"]
    print(f"\ninterpreter output: shape={out.shape}, "
          f"mean={out[1:-1, 1:-1].mean():.4f}")

    # -- 5. and with generated C compiled by the system compiler ----------
    try:
        native = compiled.build()
    except Exception as exc:  # no C compiler available
        print(f"(skipping native backend: {exc})")
        return
    nat = native(values, {I: image}, n_threads=2)["sharpen"]
    print(f"native output matches: "
          f"{np.allclose(nat, out, rtol=1e-5, atol=1e-6)}")
    print(f"\ngenerated C is {len(compiled.c_source().splitlines())} "
          "lines; see examples/show_generated_code.py")


if __name__ == "__main__":
    main()
