"""Print the generated C for Harris corner detection (paper Figure 7).

Shows the code the compiler emits for the paper's running example — the
OpenMP-parallel tile loops, per-thread scratchpads for Ix/Iy/Sxx/Syy/Sxy,
clamped (`imax`/`imin`) loop bounds per case region, and `ivdep`-marked
vectorizable inner loops::

    python examples/show_generated_code.py [--full]
"""

import sys

from repro import CompileOptions, compile_pipeline
from repro.apps.harris import build_pipeline


def main() -> None:
    app = build_pipeline()
    values = {app.params["R"]: 6400, app.params["C"]: 6400}
    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((32, 256)),
                                name="harris")
    source = compiled.c_source()
    lines = source.splitlines()
    print(f"// {len(lines)} lines generated from the "
          f"~50-line DSL specification\n")
    if "--full" in sys.argv:
        print(source)
        return
    # show the group body (the Figure 7 excerpt)
    start = next(i for i, l in enumerate(lines) if "group 0" in l)
    print("\n".join(lines[start:start + 60]))
    print("    ... (run with --full for the whole translation unit)")


if __name__ == "__main__":
    main()
