"""Autotuning demo (paper Section 3.8, Figure 9).

Sweeps a small model-restricted configuration space for Harris corner
detection, prints the Figure 9-style scatter data, and contrasts the
result with stochastic wide-space search on the same budget::

    python examples/autotune_demo.py [size] [workers]
"""

import sys

import numpy as np

from repro.apps.harris import build_pipeline
from repro.autotune import TuneConfig, autotune, random_search


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 1024

    app = build_pipeline()
    R, C = app.params["R"], app.params["C"]
    values = {R: size, C: size}
    rng = np.random.default_rng(0)
    inputs = app.make_inputs(values, rng)

    space = [TuneConfig((tx, ty), th)
             for tx in (16, 32, 128) for ty in (64, 256, 512)
             for th in (0.2, 0.5)]
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    print(f"model-driven sweep: {len(space)} configurations "
          f"({workers} compile workers) ...")
    report = autotune(app.outputs, values, values, inputs, space=space,
                      n_threads=2, n_workers=workers, name="tune_demo")
    for r in sorted(report.results, key=lambda r: r.time_parallel_ms):
        print(f"  {str(r.config):34s} t1={r.time_single_ms:8.2f} ms  "
              f"t2={r.time_parallel_ms:8.2f} ms  groups={r.n_groups}")
    best = report.best()
    print(f"\nbest: {best.config} ({best.time_parallel_ms:.2f} ms); "
          f"sweep took {report.elapsed_s:.1f}s")

    print(f"\nstochastic wide-space search, same budget "
          f"({len(space)} evals) ...")
    rand = random_search(app.outputs, values, values, inputs,
                         budget=len(space), n_threads=2,
                         name="tune_demo_rand")
    print(f"random-search best: {rand.best().config} "
          f"({rand.best().time_ms:.2f} ms)")
    ratio = rand.best().time_ms / best.time_parallel_ms
    print(f"model-driven sweep is {ratio:.2f}x better at equal budget")


if __name__ == "__main__":
    main()
