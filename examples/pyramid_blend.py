"""Pyramid blending of a multi-focus pair (the paper's Figure 8 app).

Generates two synthetic images, each sharp in one half, blends them
through Laplacian pyramids, and verifies the blend recovers sharpness on
both sides::

    python examples/pyramid_blend.py [size]
"""

import sys

import numpy as np

from repro import CompileOptions, compile_pipeline
from repro.apps.pyramid import build_pipeline


def sharpness(img: np.ndarray) -> float:
    """Mean absolute Laplacian — a crude focus measure."""
    lap = (img[:, 1:-1, 1:-1] * 4 - img[:, :-2, 1:-1] - img[:, 2:, 1:-1]
           - img[:, 1:-1, :-2] - img[:, 1:-1, 2:])
    return float(np.abs(lap).mean())


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    levels = 4

    app = build_pipeline(levels=levels)
    R, C = app.params["R"], app.params["C"]
    values = {R: size, C: size}

    rng = np.random.default_rng(3)
    inputs = app.make_inputs(values, rng)
    (A, a), (B, b), (M, m) = inputs.items()

    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((8, 64, 256)),
                                name="blend_example")
    print("grouping (Figure 8):")
    print(compiled.plan.grouping.summary())

    out = compiled(values, inputs)[app.outputs[0].name]

    half = size // 2
    pad = size // 8
    left = np.s_[:, pad:size - pad, pad:half - pad]
    right = np.s_[:, pad:size - pad, half + pad:size - pad]
    print(f"\nsharpness (higher = more in focus):")
    print(f"  input A : left {sharpness(a[left]):.4f}  "
          f"right {sharpness(a[right]):.4f}  (sharp left)")
    print(f"  input B : left {sharpness(b[left]):.4f}  "
          f"right {sharpness(b[right]):.4f}  (sharp right)")
    print(f"  blended : left {sharpness(out[left]):.4f}  "
          f"right {sharpness(out[right]):.4f}  (sharp everywhere)")


if __name__ == "__main__":
    main()
