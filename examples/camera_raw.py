"""Camera RAW processing: Bayer mosaic in, colour image out.

Runs the 32-stage camera pipeline on a synthetic GRBG RAW frame and
shows the compiler fusing everything except the tone-curve LUT::

    python examples/camera_raw.py [rows cols]
"""

import sys

import numpy as np

from repro import CompileOptions, compile_pipeline
from repro.apps.camera import build_pipeline


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    cols = int(sys.argv[2]) if len(sys.argv) > 2 else 512

    app = build_pipeline()
    values = {app.params["R"]: rows, app.params["C"]: cols}
    rng = np.random.default_rng(11)
    inputs = app.make_inputs(values, rng)

    compiled = compile_pipeline(app.outputs, values,
                                CompileOptions.optimized((32, 256)),
                                name="camera_example")
    print(compiled.summary())
    print("\nNote the single fused group covering demosaic + colour "
          "correction,\nwith the LUT ('curve') kept separate — the "
          "paper reports the same structure.\n")

    out = compiled(values, inputs)["sharpened"]
    raw = next(iter(inputs.values()))
    print(f"RAW in : {raw.shape} {raw.dtype}, "
          f"range [{raw.min()}, {raw.max()}]")
    print(f"RGB out: {out.shape} {out.dtype}, "
          f"range [{out.min():.3f}, {out.max():.3f}]")
    for name, channel in zip("RGB", out):
        print(f"  {name}: mean {channel.mean():.3f}")


if __name__ == "__main__":
    main()
