"""Parallel autotuning with the concurrency-safe compile cache.

Sweeps a model-restricted configuration space for Harris corner
detection with a process-pool compile farm (timing stays serialized on
the parent), then repeats the sweep to show every configuration hitting
the persistent compile cache, and writes the structured TuningReport to
JSON::

    python examples/parallel_autotune.py [size] [workers] [report.json]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.apps.harris import build_pipeline
from repro.autotune import TuneConfig, autotune
from repro.codegen.build import compiler_available, get_cache


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    json_path = sys.argv[3] if len(sys.argv) > 3 else None

    app = build_pipeline()
    R, C = app.params["R"], app.params["C"]
    values = {R: size, C: size}
    inputs = app.make_inputs(values, np.random.default_rng(0))

    backend = "native" if compiler_available() else "interp"
    space = [TuneConfig((tx, ty), th)
             for tx in (16, 32, 128) for ty in (64, 256, 512)
             for th in (0.2, 0.4, 0.5)]
    cache_dir = Path(tempfile.mkdtemp(prefix="repro_tune_cache_"))

    print(f"sweep 1: {len(space)} configurations, {workers} compile "
          f"workers, backend={backend} ...")
    report = autotune(app.outputs, values, values, inputs, space=space,
                      n_threads=2, repeats=1, n_workers=workers,
                      backend=backend, cache_dir=cache_dir,
                      name="par_tune")
    best = report.best()
    print(f"  swept in {report.elapsed_s:.1f}s "
          f"({report.cache_misses} compiles, {report.cache_hits} cache "
          f"hits, {len(report.skipped)} skipped)")
    print(f"  best: {best.config} -> {best.time_parallel_ms:.2f} ms")

    print("sweep 2: same space, warm cache ...")
    report2 = autotune(app.outputs, values, values, inputs, space=space,
                       n_threads=2, repeats=1, n_workers=workers,
                       backend=backend, cache_dir=cache_dir,
                       name="par_tune")
    print(f"  swept in {report2.elapsed_s:.1f}s — all cache hits: "
          f"{report2.all_cache_hits}")

    cache = get_cache(cache_dir)
    print(f"cache: {len(cache.entries())} artifacts, "
          f"{cache.size_bytes() / 1e6:.1f} MB at {cache.root}")

    if json_path:
        report2.save(json_path)
        print(f"wrote {json_path}")
    else:
        print("\nTuningReport JSON (truncated):")
        print(report2.to_json()[:600], "...")


if __name__ == "__main__":
    main()
